(* Property-based tests of cross-module invariants: conservation laws in
   the simulator, bounds from the paper's equations, and structural
   properties of the topology. *)

open Mptcp_repro.Netsim
module F = Mptcp_repro.Fluid

(* Timer handles are discarded in tests: scheduling here is fire-and-forget. *)
module Sim = struct
  include Sim

  let schedule_at ?src sim t f = ignore (Sim.schedule_at ?src sim t f : Sim.Timer.t)
  let schedule_after ?src sim d f = ignore (Sim.schedule_after ?src sim d f : Sim.Timer.t)
end

(* --- simulator conservation -------------------------------------------- *)

let prop_queue_conserves_packets =
  QCheck.Test.make ~name:"queue: arrivals = forwarded + dropped + backlog"
    ~count:60
    QCheck.(
      triple (int_range 1 400) (int_range 1 50) (int_range 0 1000))
    (fun (n_packets, buffer, seed) ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed in
      let q =
        Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:buffer
          ~discipline:Queue.Droptail ()
      in
      let forwarded = ref 0 in
      let sink (_ : Packet.t) = incr forwarded in
      let route = [| Queue.hop q; sink |] in
      (* random arrival times in [0, 0.2): bursts stress the buffer *)
      for i = 0 to n_packets - 1 do
        Sim.schedule_at sim
          (Rng.uniform rng 0.2)
          (fun () ->
            Packet.forward
              (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:0. ~route))
      done;
      Sim.run_until sim 0.2;
      (* stop mid-drain: backlog may be non-zero *)
      Queue.arrivals q = !forwarded + Queue.drops q + Queue.backlog q)

let prop_red_drops_bounded_by_droptail_capacity =
  QCheck.Test.make
    ~name:"queue: RED never delivers more than the link can carry" ~count:40
    QCheck.(int_range 0 1000)
    (fun seed ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed in
      let q =
        Queue.create ~sim ~rng ~rate_bps:1.2e6 ~buffer_pkts:100
          ~discipline:(Queue.Red (Queue.paper_red ~link_mbps:1.2)) ()
      in
      let forwarded = ref 0 in
      let sink (_ : Packet.t) = incr forwarded in
      let route = [| Queue.hop q; sink |] in
      for i = 0 to 999 do
        Sim.schedule_at sim
          (Rng.uniform rng 1.)
          (fun () ->
            Packet.forward
              (Packet.data ~flow:0 ~subflow:0 ~seq:i ~sent_at:0. ~route))
      done;
      Sim.run_until sim 1.;
      (* 1.2 Mb/s for 1 s = at most 100 packets (+1 boundary) *)
      !forwarded <= 101)

let prop_finite_flows_complete_exactly =
  QCheck.Test.make
    ~name:"tcp: finite transfers deliver exactly their size under any loss"
    ~count:25
    QCheck.(
      triple (int_range 20 300) (int_range 8 60) (int_range 0 1000))
    (fun (size, buffer, seed) ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed in
      let q =
        Queue.create ~sim ~rng ~rate_bps:4e6 ~buffer_pkts:buffer
          ~discipline:Queue.Droptail ()
      in
      let fwd = Pipe.create ~sim ~delay:0.02 in
      let rv = Pipe.create ~sim ~delay:0.02 in
      let conn =
        Tcp.create ~sim
          ~cc:(Mptcp_repro.Cc.Reno.create ())
          ~paths:
            [|
              {
                Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |];
                rev = [| Pipe.hop rv |];
              };
            |]
          ~size_pkts:size ~flow_id:0 ()
      in
      Sim.run_until sim 300.;
      Tcp.completed conn && Tcp.total_acked conn = size)

let prop_mptcp_split_sums_to_size =
  QCheck.Test.make
    ~name:"mptcp: subflow deliveries sum exactly to the transfer size"
    ~count:20
    QCheck.(pair (int_range 50 400) (int_range 0 1000))
    (fun (size, seed) ->
      let sim = Sim.create () in
      let rng = Rng.create ~seed in
      let mk () =
        let q =
          Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:5e6
            ~buffer_pkts:50 ~discipline:Queue.Droptail ()
        in
        let fwd = Pipe.create ~sim ~delay:0.02 in
        let rv = Pipe.create ~sim ~delay:0.02 in
        {
          Tcp.fwd = [| Queue.hop q; Pipe.hop fwd |];
          rev = [| Pipe.hop rv |];
        }
      in
      let conn =
        Tcp.create ~sim
          ~cc:(Mptcp_repro.Cc.Olia.create ())
          ~paths:[| mk (); mk () |]
          ~size_pkts:size ~flow_id:0 ()
      in
      Sim.run_until sim 300.;
      Tcp.completed conn
      && Tcp.subflow_acked conn 0 + Tcp.subflow_acked conn 1 = size)

(* --- algorithm bounds ---------------------------------------------------- *)

let views_gen =
  QCheck.(
    list_of_size (Gen.int_range 2 8)
      (pair (float_range 1. 60.) (float_range 0.01 0.6)))

let prop_olia_alpha_magnitude_bound =
  (* Eq. 6: |alpha_r| <= 1/|Ru| *)
  QCheck.Test.make ~name:"olia: |alpha| <= 1/|R|" ~count:300
    QCheck.(pair views_gen (list_of_size (Gen.int_range 2 8) (float_range 0. 1e5)))
    (fun (specs, ells) ->
      let views =
        Array.of_list
          (List.map (fun (w, r) -> { Mptcp_repro.Cc.Types.cwnd = w; rtt = r }) specs)
      in
      let n = Array.length views in
      let ell = Array.init n (fun i -> List.nth ells (i mod List.length ells)) in
      let alpha = Mptcp_repro.Cc.Olia.alpha_values ~ell views in
      Array.for_all (fun a -> abs_float a <= (1. /. float_of_int n) +. 1e-12) alpha)

let prop_coupled_increase_monotone_in_eps_at_large_w =
  (* for windows above 1, a larger epsilon (less coupling) gives a larger
     per-ACK increase on any subflow of a multi-subflow connection whose
     total exceeds its own window *)
  QCheck.Test.make ~name:"coupled: increase grows with epsilon (w > 1)"
    ~count:200
    QCheck.(pair (float_range 2. 50.) (float_range 2. 50.))
    (fun (w1, w2) ->
      let views =
        [|
          { Mptcp_repro.Cc.Types.cwnd = w1; rtt = 0.1 };
          { Mptcp_repro.Cc.Types.cwnd = w2; rtt = 0.1 };
        |]
      in
      let inc eps =
        (Mptcp_repro.Cc.Coupled.create ~epsilon:eps).Mptcp_repro.Cc.Types
          .increase ~views ~idx:0
      in
      inc 0. <= inc 1. +. 1e-12 && inc 1. <= inc 2. +. 1e-12)

let prop_balia_positive =
  QCheck.Test.make ~name:"balia: increase positive, decrease within bounds"
    ~count:200 views_gen
    (fun specs ->
      let views =
        Array.of_list
          (List.map (fun (w, r) -> { Mptcp_repro.Cc.Types.cwnd = w; rtt = r }) specs)
      in
      let cc = Mptcp_repro.Cc.Balia.create () in
      let ok = ref true in
      Array.iteri
        (fun idx v ->
          let inc = cc.Mptcp_repro.Cc.Types.increase ~views ~idx in
          let dec = cc.Mptcp_repro.Cc.Types.loss_decrease ~views ~idx in
          if inc <= 0. then ok := false;
          if dec < 0. || dec > 0.75 *. v.Mptcp_repro.Cc.Types.cwnd +. 1e-9 then
            ok := false)
        views;
      !ok)

(* --- fluid bounds ---------------------------------------------------------- *)

let prop_scenario_a_type2_never_gains =
  (* upgrading type-1 users can only hurt type-2 users: norm2 <= 1 *)
  QCheck.Test.make ~name:"scenario A: type-2 normalized throughput <= 1"
    ~count:200
    QCheck.(
      triple (int_range 1 50) (int_range 1 50)
        (pair (float_range 0.2 3.) (float_range 0.2 3.)))
    (fun (n1, n2, (c1, c2)) ->
      let r =
        F.Scenario_a.lia
          {
            F.Scenario_a.n1;
            n2;
            c1 = F.Units.pps_of_mbps c1;
            c2 = F.Units.pps_of_mbps c2;
            rtt = 0.15;
          }
      in
      r.F.Scenario_a.norm_type2 <= 1. +. 1e-9 && r.F.Scenario_a.norm_type2 > 0.)

let prop_scenario_c_lia_between_fair_and_greedy =
  QCheck.Test.make
    ~name:"scenario C: single-path share positive, multipath >= fair floor"
    ~count:200
    QCheck.(
      triple (int_range 1 40) (int_range 1 40)
        (pair (float_range 0.2 2.5) (float_range 0.2 2.5)))
    (fun (n1, n2, (c1, c2)) ->
      let params =
        {
          F.Scenario_c.n1;
          n2;
          c1 = F.Units.pps_of_mbps c1;
          c2 = F.Units.pps_of_mbps c2;
          rtt = 0.15;
        }
      in
      let r = F.Scenario_c.lia params in
      r.F.Scenario_c.y > 0.
      && r.F.Scenario_c.x1 +. r.F.Scenario_c.x2 >= r.F.Scenario_c.x1 -. 1e-9)

let prop_scenario_c_optimum_dominates_lia_for_singles =
  QCheck.Test.make
    ~name:"scenario C: optimum never worse than LIA for single-path users"
    ~count:200
    QCheck.(pair (int_range 1 40) (float_range 0.34 2.5))
    (fun (n1, c1) ->
      let params =
        {
          F.Scenario_c.n1;
          n2 = 10;
          c1 = F.Units.pps_of_mbps c1;
          c2 = F.Units.pps_of_mbps 1.;
          rtt = 0.15;
        }
      in
      let lia = F.Scenario_c.lia params in
      let opt = F.Scenario_c.optimum_with_probing params in
      opt.F.Scenario_c.norm_single >= lia.F.Scenario_c.norm_single -. 1e-9)

let prop_scenario_b_regimes_consistent =
  QCheck.Test.make ~name:"scenario B: loss ratio matches the declared regime"
    ~count:200
    QCheck.(float_range 0.1 3.)
    (fun ratio ->
      let r =
        F.Scenario_b.lia_red_multipath
          {
            F.Scenario_b.n = 15;
            cx = F.Units.pps_of_mbps (36. *. ratio);
            ct = F.Units.pps_of_mbps 36.;
            rtt = 0.15;
          }
      in
      match r.F.Scenario_b.regime with
      | F.Scenario_b.X_more_congested ->
        r.F.Scenario_b.px >= r.F.Scenario_b.pt -. 1e-9
      | F.Scenario_b.T_more_congested ->
        r.F.Scenario_b.pt >= r.F.Scenario_b.px -. 1e-9)

let prop_lia_rates_positive_and_bounded =
  QCheck.Test.make ~name:"Eq.2: all LIA path rates positive, sum = best"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (pair (float_range 1e-4 0.5) (float_range 0.01 1.)))
    (fun specs ->
      let paths =
        List.map (fun (l, r) -> { F.Tcp_model.loss = l; rtt = r }) specs
      in
      let rates = F.Tcp_model.lia_rates paths in
      let total = List.fold_left ( +. ) 0. rates in
      let best = F.Tcp_model.best_path_rate paths in
      List.for_all (fun x -> x > 0.) rates
      && abs_float (total -. best) <= 1e-6 *. best)

(* --- topology ----------------------------------------------------------------- *)

let prop_fattree_sample_within_all =
  QCheck.Test.make ~name:"fattree: sampled paths are a subset by count"
    ~count:60
    QCheck.(
      triple (int_range 0 15) (int_range 0 15) (int_range 1 10))
    (fun (src, dst, n) ->
      src = dst
      ||
      let sim = Sim.create () in
      let rng = Rng.create ~seed:1 in
      let tree =
        Mptcp_repro.Topology.Fattree.create ~sim ~rng ~k:4 ~rate_bps:1e6
          ~delay:0.001 ~buffer_pkts:10 ~discipline:Queue.Droptail ()
      in
      let all =
        Array.length (Mptcp_repro.Topology.Fattree.all_paths tree ~src ~dst)
      in
      let sampled =
        Array.length
          (Mptcp_repro.Topology.Fattree.sample_paths tree
             ~rng:(Rng.create ~seed:2) ~src ~dst ~n)
      in
      sampled = Stdlib.min n all)

let prop_workload_poisson_sorted_within_duration =
  QCheck.Test.make ~name:"workload: poisson arrivals sorted and bounded"
    ~count:100
    QCheck.(pair (int_range 0 1000) (float_range 1. 50.))
    (fun (seed, duration) ->
      let rng = Rng.create ~seed in
      let flows =
        Mptcp_repro.Workload.poisson_short_flows ~rng ~src:0 ~dst:1
          ~mean_interval:0.3 ~size_pkts:47 ~duration
      in
      let rec sorted prev = function
        | [] -> true
        | f :: rest ->
          f.Mptcp_repro.Workload.start >= prev
          && f.Mptcp_repro.Workload.start < duration
          && sorted f.Mptcp_repro.Workload.start rest
      in
      sorted 0. flows)

(* --- congestion-control update rules ----------------------------------- *)

let views_of specs =
  Array.of_list
    (List.map (fun (w, r) -> { Mptcp_repro.Cc.Types.cwnd = w; rtt = r }) specs)

let prop_olia_increase_bounded =
  (* Eq. 5: the Kelly-voice term is at most 1/w_r (since Σ w_p/rtt_p >=
     w_r/rtt_r) and |alpha_r| <= 1/|R|, so a fresh OLIA instance's
     per-ACK increase never exceeds (1 + 1/|R|)/w_r *)
  QCheck.Test.make ~name:"olia: per-ACK increase <= (1 + 1/n)/w" ~count:300
    views_gen
    (fun specs ->
      let views = views_of specs in
      let n = float_of_int (Array.length views) in
      let cc = Mptcp_repro.Cc.Olia.create () in
      Array.for_all
        (fun idx ->
          let inc = cc.Mptcp_repro.Cc.Types.increase ~views ~idx in
          inc >= 0.
          && inc <= ((1. +. (1. /. n)) /. views.(idx).Mptcp_repro.Cc.Types.cwnd) +. 1e-12)
        (Array.init (Array.length views) Fun.id))

let prop_lia_increase_at_most_reno =
  (* Eq. 1 takes the min with 1/w_r, so on any subflow with w >= 1 LIA
     is never more aggressive than a regular TCP flow on that path *)
  QCheck.Test.make ~name:"lia: increase <= Reno's 1/w on each subflow"
    ~count:300 views_gen
    (fun specs ->
      let views = views_of specs in
      Array.for_all
        (fun idx ->
          Mptcp_repro.Cc.Lia.increase_formula views idx
          <= (1. /. views.(idx).Mptcp_repro.Cc.Types.cwnd) +. 1e-12)
        (Array.init (Array.length views) Fun.id))

let prop_cwnd_floor_after_losses =
  (* after any pattern of random losses the window of every subflow
     stays at or above 1 MSS; run with the simulator invariants armed so
     internal consistency checks fire too (saving/restoring the flag) *)
  QCheck.Test.make ~name:"tcp: cwnd never below 1 MSS under random loss"
    ~count:25
    QCheck.(
      triple (int_range 0 1000) (int_range 0 2) (float_range 0.01 0.25))
    (fun (seed, algo_ix, loss_prob) ->
      let was_armed = Invariant.enabled () in
      Invariant.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Invariant.set_enabled was_armed)
        (fun () ->
          let sim = Sim.create () in
          let rng = Rng.create ~seed in
          let q =
            Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:4e6
              ~buffer_pkts:30 ~discipline:Queue.Droptail ()
          in
          let lossy =
            Lossy.create ~sim ~rng:(Rng.split rng) ~loss_prob ()
          in
          let fwd = Pipe.create ~sim ~delay:0.02 in
          let rv = Pipe.create ~sim ~delay:0.02 in
          let cc =
            match algo_ix with
            | 0 -> Mptcp_repro.Cc.Reno.create ()
            | 1 -> Mptcp_repro.Cc.Lia.create ()
            | _ -> Mptcp_repro.Cc.Olia.create ()
          in
          let conn =
            Tcp.create ~sim ~cc
              ~paths:
                [|
                  {
                    Tcp.fwd = [| Lossy.hop lossy; Queue.hop q; Pipe.hop fwd |];
                    rev = [| Pipe.hop rv |];
                  };
                |]
              ~flow_id:0 ()
          in
          Sim.run_until sim 20.;
          Lossy.dropped lossy > 0 && Tcp.subflow_cwnd conn 0 >= 1.))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_queue_conserves_packets;
      prop_red_drops_bounded_by_droptail_capacity;
      prop_finite_flows_complete_exactly;
      prop_mptcp_split_sums_to_size;
      prop_olia_alpha_magnitude_bound;
      prop_olia_increase_bounded;
      prop_lia_increase_at_most_reno;
      prop_cwnd_floor_after_losses;
      prop_coupled_increase_monotone_in_eps_at_large_w;
      prop_balia_positive;
      prop_scenario_a_type2_never_gains;
      prop_scenario_c_lia_between_fair_and_greedy;
      prop_scenario_c_optimum_dominates_lia_for_singles;
      prop_scenario_b_regimes_consistent;
      prop_lia_rates_positive_and_bounded;
      prop_fattree_sample_within_all;
      prop_workload_poisson_sorted_within_duration;
    ]
