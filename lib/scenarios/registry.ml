module Spec = Repro_exp.Spec
module Outcome = Repro_exp.Outcome

module type SCENARIO = Repro_exp.Scenario_intf.S

(* Parameters shared by most testbed configs. *)
let algo_param default =
  Spec.string "algo" default
    "congestion control: reno, lia, olia, balia, cubic, scalable, wvegas or \
     coupled:<eps>"

let seed_param = Spec.int "seed" 1 "PRNG seed (deterministic given the seed)"
let duration_param d = Spec.float "duration" d "simulated duration, seconds"

let warmup_param w =
  Spec.float "warmup" w "warm-up excluded from the measurements, seconds"

module Scenario_a : SCENARIO = struct
  let d = Scen_a.default

  let spec =
    {
      Spec.name = "scenario-a";
      doc =
        "N1 MPTCP streaming clients with a private path and a subflow \
         through a shared AP used by N2 regular-TCP clients (paper Fig. 2)";
      params =
        [
          Spec.int "n1" d.Scen_a.n1 "number of multipath (type-1) users";
          Spec.int "n2" d.Scen_a.n2 "number of single-path (type-2) users";
          Spec.float "c1" d.Scen_a.c1_mbps
            "per-user capacity at the server bottleneck, Mb/s";
          Spec.float "c2" d.Scen_a.c2_mbps
            "per-user capacity at the shared AP, Mb/s";
          algo_param d.Scen_a.algo;
          duration_param d.Scen_a.duration;
          warmup_param d.Scen_a.warmup;
          seed_param;
        ];
    }

  let run b =
    let r =
      Scen_a.run
        {
          Scen_a.n1 = Spec.get_int spec b "n1";
          n2 = Spec.get_int spec b "n2";
          c1_mbps = Spec.get_float spec b "c1";
          c2_mbps = Spec.get_float spec b "c2";
          algo = Spec.get_string spec b "algo";
          duration = Spec.get_float spec b "duration";
          warmup = Spec.get_float spec b "warmup";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.add_metrics
      (Outcome.of_metrics
         [
           ("norm_type1", r.Scen_a.norm_type1);
           ("norm_type2", r.Scen_a.norm_type2);
           ("p1", r.Scen_a.p1);
           ("p2", r.Scen_a.p2);
         ])
      (Repro_obs.Meter.metrics r.Scen_a.obs)
end

module Scenario_b : SCENARIO = struct
  let d = Scen_b.default

  let spec =
    {
      Spec.name = "scenario-b";
      doc =
        "the four-ISP multihoming story: Blue users are multihomed, Red \
         users may upgrade to MPTCP (paper Tables I-II)";
      params =
        [
          Spec.int "n" d.Scen_b.n "users per class";
          Spec.float "cx" d.Scen_b.cx_mbps "total capacity of ISP X, Mb/s";
          Spec.float "ct" d.Scen_b.ct_mbps "total capacity of ISP T, Mb/s";
          Spec.bool "red_multipath" d.Scen_b.red_multipath
            "have Red users upgraded to MPTCP?";
          algo_param d.Scen_b.algo;
          duration_param d.Scen_b.duration;
          warmup_param d.Scen_b.warmup;
          seed_param;
        ];
    }

  let run b =
    let r =
      Scen_b.run
        {
          Scen_b.n = Spec.get_int spec b "n";
          cx_mbps = Spec.get_float spec b "cx";
          ct_mbps = Spec.get_float spec b "ct";
          red_multipath = Spec.get_bool spec b "red_multipath";
          algo = Spec.get_string spec b "algo";
          duration = Spec.get_float spec b "duration";
          warmup = Spec.get_float spec b "warmup";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.add_metrics
      (Outcome.of_metrics
         [
           ("blue_rate", r.Scen_b.blue_rate);
           ("red_rate", r.Scen_b.red_rate);
           ("aggregate", r.Scen_b.aggregate);
           ("px", r.Scen_b.px);
           ("pt", r.Scen_b.pt);
         ])
      (Repro_obs.Meter.metrics r.Scen_b.obs)
end

module Scenario_c : SCENARIO = struct
  let d = Scen_c.default

  let spec =
    {
      Spec.name = "scenario-c";
      doc =
        "N1 multipath users on a private AP1 plus a shared AP2 that N2 \
         single-path TCP users depend on (paper Fig. 5)";
      params =
        [
          Spec.int "n1" d.Scen_c.n1 "number of multipath users";
          Spec.int "n2" d.Scen_c.n2 "number of single-path users";
          Spec.float "c1" d.Scen_c.c1_mbps "per-user capacity at AP1, Mb/s";
          Spec.float "c2" d.Scen_c.c2_mbps "per-user capacity at AP2, Mb/s";
          algo_param d.Scen_c.algo;
          Spec.float "background" d.Scen_c.background_mbps
            "CBR background traffic through AP2, Mb/s (0 = none)";
          Spec.bool "path_manager" d.Scen_c.with_path_manager
            "attach the bad-path-discarding manager to multipath users";
          duration_param d.Scen_c.duration;
          warmup_param d.Scen_c.warmup;
          seed_param;
        ];
    }

  let run b =
    let r =
      Scen_c.run
        {
          Scen_c.n1 = Spec.get_int spec b "n1";
          n2 = Spec.get_int spec b "n2";
          c1_mbps = Spec.get_float spec b "c1";
          c2_mbps = Spec.get_float spec b "c2";
          algo = Spec.get_string spec b "algo";
          background_mbps = Spec.get_float spec b "background";
          with_path_manager = Spec.get_bool spec b "path_manager";
          duration = Spec.get_float spec b "duration";
          warmup = Spec.get_float spec b "warmup";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.add_metrics
      (Outcome.of_metrics
         [
           ("norm_multipath", r.Scen_c.norm_multipath);
           ("norm_single", r.Scen_c.norm_single);
           ("p1", r.Scen_c.p1);
           ("p2", r.Scen_c.p2);
         ])
      (Repro_obs.Meter.metrics r.Scen_c.obs)
end

module Two_bottleneck_s : SCENARIO = struct
  let d = Two_bottleneck.symmetric

  let spec =
    {
      Spec.name = "two-bottleneck";
      doc =
        "one two-path MPTCP user over two separate bottlenecks shared with \
         regular TCP flows; window/alpha traces (paper Figs. 7-8)";
      params =
        [
          Spec.int "n_tcp1" d.Two_bottleneck.n_tcp1
            "TCP flows sharing bottleneck 1";
          Spec.int "n_tcp2" d.Two_bottleneck.n_tcp2
            "TCP flows sharing bottleneck 2";
          Spec.float "c" d.Two_bottleneck.c_mbps
            "capacity of each bottleneck, Mb/s";
          Spec.float "delay1" d.Two_bottleneck.delay1_ms
            "one-way propagation of path 1, ms";
          Spec.float "delay2" d.Two_bottleneck.delay2_ms
            "one-way propagation of path 2, ms";
          algo_param d.Two_bottleneck.algo;
          duration_param d.Two_bottleneck.duration;
          Spec.float "sample_period" d.Two_bottleneck.sample_period
            "window/alpha sampling interval, seconds";
          seed_param;
        ];
    }

  let run b =
    let t =
      Two_bottleneck.run
        {
          Two_bottleneck.n_tcp1 = Spec.get_int spec b "n_tcp1";
          n_tcp2 = Spec.get_int spec b "n_tcp2";
          c_mbps = Spec.get_float spec b "c";
          delay1_ms = Spec.get_float spec b "delay1";
          delay2_ms = Spec.get_float spec b "delay2";
          algo = Spec.get_string spec b "algo";
          duration = Spec.get_float spec b "duration";
          sample_period = Spec.get_float spec b "sample_period";
          seed = Spec.get_int spec b "seed";
        }
    in
    let series ts = Array.map snd (Repro_stats.Timeseries.to_array ts) in
    let times = Array.map fst (Repro_stats.Timeseries.to_array t.Two_bottleneck.w1) in
    Outcome.of_metrics
      ~arrays:
        [
          ("t", times);
          ("w1", series t.Two_bottleneck.w1);
          ("w2", series t.Two_bottleneck.w2);
          ("alpha1", series t.Two_bottleneck.alpha1);
          ("alpha2", series t.Two_bottleneck.alpha2);
        ]
      [
        ("goodput1_mbps", t.Two_bottleneck.goodput1_mbps);
        ("goodput2_mbps", t.Two_bottleneck.goodput2_mbps);
        ("flip_count", float_of_int t.Two_bottleneck.flip_count);
      ]
end

module Responsiveness_s : SCENARIO = struct
  let d = Responsiveness.default

  let spec =
    {
      Spec.name = "responsiveness";
      doc =
        "shock/relief responsiveness: TCP flows slam into path 2 and later \
         leave; how fast does the multipath user react? (paper SII claim)";
      params =
        [
          Spec.float "c" d.Responsiveness.c_mbps "link capacity, Mb/s";
          Spec.int "n_shock" d.Responsiveness.n_shock
            "TCP flows that slam into path 2";
          Spec.float "shock_at" d.Responsiveness.shock_at "shock time, seconds";
          Spec.float "relief_at" d.Responsiveness.relief_at
            "relief time, seconds";
          algo_param d.Responsiveness.algo;
          duration_param d.Responsiveness.duration;
          seed_param;
        ];
    }

  let run b =
    let r =
      Responsiveness.run
        {
          Responsiveness.c_mbps = Spec.get_float spec b "c";
          n_shock = Spec.get_int spec b "n_shock";
          shock_at = Spec.get_float spec b "shock_at";
          relief_at = Spec.get_float spec b "relief_at";
          algo = Spec.get_string spec b "algo";
          duration = Spec.get_float spec b "duration";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.of_metrics
      [
        ("pre_shock_share", r.Responsiveness.pre_shock_share);
        ("shock_response_s", r.Responsiveness.shock_response_s);
        ("relief_response_s", r.Responsiveness.relief_response_s);
        ("post_relief_share", r.Responsiveness.post_relief_share);
      ]
end

module Wireless_s : SCENARIO = struct
  let d = Wireless.default

  let spec =
    {
      Spec.name = "wireless";
      doc =
        "WiFi+cellular bonding with random wireless losses (the paper's \
         reference [12])";
      params =
        [
          Spec.float "wifi" d.Wireless.wifi_mbps "WiFi path rate, Mb/s";
          Spec.float "wifi_loss" d.Wireless.wifi_loss
            "random per-packet loss on the WiFi path";
          Spec.float "wifi_delay" d.Wireless.wifi_delay_ms
            "WiFi one-way propagation, ms";
          Spec.float "cell" d.Wireless.cell_mbps "cellular path rate, Mb/s";
          Spec.float "cell_delay" d.Wireless.cell_delay_ms
            "cellular one-way propagation, ms";
          algo_param d.Wireless.algo;
          duration_param d.Wireless.duration;
          warmup_param d.Wireless.warmup;
          seed_param;
        ];
    }

  let run b =
    let r =
      Wireless.run
        {
          Wireless.wifi_mbps = Spec.get_float spec b "wifi";
          wifi_loss = Spec.get_float spec b "wifi_loss";
          wifi_delay_ms = Spec.get_float spec b "wifi_delay";
          cell_mbps = Spec.get_float spec b "cell";
          cell_delay_ms = Spec.get_float spec b "cell_delay";
          algo = Spec.get_string spec b "algo";
          duration = Spec.get_float spec b "duration";
          warmup = Spec.get_float spec b "warmup";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.of_metrics
      [
        ("wifi_mbps", r.Wireless.wifi_mbps);
        ("cell_mbps", r.Wireless.cell_mbps);
        ("total_mbps", r.Wireless.total_mbps);
        ("wifi_timeouts", float_of_int r.Wireless.wifi_timeouts);
      ]
end

module Fattree_s : SCENARIO = struct
  let d = Fattree_static.default

  let spec =
    {
      Spec.name = "fattree";
      doc =
        "static FatTree permutation experiment: every host sends one \
         long-lived flow to a random distinct host (paper Fig. 13)";
      params =
        [
          Spec.int "k" d.Fattree_static.k
            "FatTree arity (even; k=8 gives 128 hosts)";
          Spec.float "rate" d.Fattree_static.rate_mbps
            "host link capacity, Mb/s";
          Spec.float "delay" d.Fattree_static.delay_ms
            "per-hop one-way latency, ms";
          Spec.int "subflows" d.Fattree_static.subflows
            "MPTCP subflows per connection (1 = plain TCP)";
          algo_param d.Fattree_static.algo;
          duration_param d.Fattree_static.duration;
          warmup_param d.Fattree_static.warmup;
          seed_param;
        ];
    }

  let run b =
    let r =
      Fattree_static.run
        {
          Fattree_static.k = Spec.get_int spec b "k";
          rate_mbps = Spec.get_float spec b "rate";
          delay_ms = Spec.get_float spec b "delay";
          subflows = Spec.get_int spec b "subflows";
          algo = Spec.get_string spec b "algo";
          duration = Spec.get_float spec b "duration";
          warmup = Spec.get_float spec b "warmup";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.of_metrics
      ~arrays:
        [
          ("flow_mbps", r.Fattree_static.flow_mbps);
          ("ranked_pct", r.Fattree_static.ranked_pct);
        ]
      [
        ("aggregate_pct_optimal", r.Fattree_static.aggregate_pct_optimal);
        ("mean_core_loss", r.Fattree_static.mean_core_loss);
      ]
end

module Fattree_dynamic_s : SCENARIO = struct
  let d = Fattree_dynamic.default

  let spec =
    {
      Spec.name = "fattree-dynamic";
      doc =
        "4:1 oversubscribed FatTree with continuous long flows and 70 kB \
         short flows (paper Fig. 14, Table III)";
      params =
        [
          Spec.int "k" d.Fattree_dynamic.k "FatTree arity";
          Spec.float "rate" d.Fattree_dynamic.rate_mbps
            "host link capacity, Mb/s";
          Spec.float "delay" d.Fattree_dynamic.delay_ms
            "per-hop one-way latency, ms";
          Spec.float "oversubscription" d.Fattree_dynamic.oversubscription
            "aggregation-to-core oversubscription factor";
          algo_param d.Fattree_dynamic.algo;
          Spec.int "subflows" d.Fattree_dynamic.subflows
            "subflows of the long flows";
          Spec.float "mean_interval" d.Fattree_dynamic.mean_interval
            "short-flow inter-arrival mean, seconds";
          duration_param d.Fattree_dynamic.duration;
          warmup_param d.Fattree_dynamic.warmup;
          seed_param;
        ];
    }

  let run b =
    let r =
      Fattree_dynamic.run
        {
          Fattree_dynamic.k = Spec.get_int spec b "k";
          rate_mbps = Spec.get_float spec b "rate";
          delay_ms = Spec.get_float spec b "delay";
          oversubscription = Spec.get_float spec b "oversubscription";
          algo = Spec.get_string spec b "algo";
          subflows = Spec.get_int spec b "subflows";
          mean_interval = Spec.get_float spec b "mean_interval";
          duration = Spec.get_float spec b "duration";
          warmup = Spec.get_float spec b "warmup";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.of_metrics
      ~arrays:
        [ ("completion_times_ms", r.Fattree_dynamic.completion_times_ms) ]
      [
        ("mean_completion_ms", r.Fattree_dynamic.mean_completion_ms);
        ("stdev_completion_ms", r.Fattree_dynamic.stdev_completion_ms);
        ("core_utilization_pct", r.Fattree_dynamic.core_utilization_pct);
        ("long_flow_mbps", r.Fattree_dynamic.long_flow_mbps);
        ("unfinished_shorts", float_of_int r.Fattree_dynamic.unfinished_shorts);
      ]
end

module Fattree_sharded_s : SCENARIO = struct
  let d = Fattree_sharded.default

  let spec =
    {
      Spec.name = "fattree-sharded";
      doc =
        "production-scale FatTree permutation experiment (k=8: 128 hosts, \
         1024 flows), runnable sharded pod-per-domain with conservative \
         lookahead (--shards)";
      params =
        [
          Spec.int "k" d.Fattree_sharded.k
            "FatTree arity (even; k=8 gives 128 hosts)";
          Spec.int "shards" d.Fattree_sharded.shards
            "simulation shards (domains); must divide k; 1 = sequential";
          Spec.float "rate" d.Fattree_sharded.rate_mbps
            "host link capacity, Mb/s";
          Spec.float "delay" d.Fattree_sharded.delay_ms
            "per-hop one-way latency, ms (the shard lookahead)";
          Spec.int "subflows" d.Fattree_sharded.subflows
            "MPTCP subflows per connection (1 = plain TCP)";
          Spec.int "flows_per_host" d.Fattree_sharded.flows_per_host
            "long-lived permutation flows originating at each host";
          algo_param d.Fattree_sharded.algo;
          duration_param d.Fattree_sharded.duration;
          warmup_param d.Fattree_sharded.warmup;
          seed_param;
        ];
    }

  let run b =
    let r =
      Fattree_sharded.run
        {
          Fattree_sharded.k = Spec.get_int spec b "k";
          shards = Spec.get_int spec b "shards";
          rate_mbps = Spec.get_float spec b "rate";
          delay_ms = Spec.get_float spec b "delay";
          subflows = Spec.get_int spec b "subflows";
          flows_per_host = Spec.get_int spec b "flows_per_host";
          algo = Spec.get_string spec b "algo";
          duration = Spec.get_float spec b "duration";
          warmup = Spec.get_float spec b "warmup";
          seed = Spec.get_int spec b "seed";
        }
    in
    Outcome.add_metrics
      (Outcome.of_metrics
         ~arrays:[ ("flow_mbps", r.Fattree_sharded.flow_mbps) ]
         [
           ("aggregate_mbps", r.Fattree_sharded.aggregate_mbps);
           ("aggregate_pct_optimal", r.Fattree_sharded.aggregate_pct_optimal);
           ("mean_flow_mbps", r.Fattree_sharded.mean_flow_mbps);
           ("p10_flow_mbps", r.Fattree_sharded.p10_flow_mbps);
           ("p50_flow_mbps", r.Fattree_sharded.p50_flow_mbps);
           ("p90_flow_mbps", r.Fattree_sharded.p90_flow_mbps);
           ("mean_core_loss", r.Fattree_sharded.mean_core_loss);
           ("cut_messages", float_of_int r.Fattree_sharded.cut_messages);
         ])
      (Repro_obs.Meter.metrics r.Fattree_sharded.obs)
end

let all : (string * (module SCENARIO)) list =
  [
    ("scenario-a", (module Scenario_a));
    ("scenario-b", (module Scenario_b));
    ("scenario-c", (module Scenario_c));
    ("two-bottleneck", (module Two_bottleneck_s));
    ("responsiveness", (module Responsiveness_s));
    ("wireless", (module Wireless_s));
    ("fattree", (module Fattree_s));
    ("fattree-dynamic", (module Fattree_dynamic_s));
    ("fattree-sharded", (module Fattree_sharded_s));
  ]

let names = List.map fst all

let mem name = List.mem_assoc name all

let find name =
  match List.assoc_opt name all with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.find: unknown scenario %S (valid: %s)" name
         (String.concat ", " names))
