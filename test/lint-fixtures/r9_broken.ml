(* A deliberately-broken hot path: the entry point is annotated
   [@olia.alloc_free] but the helper it calls allocates a list cell per
   event. The regression test asserts R9 catches exactly this chain,
   proving the alloc-free gate would fail CI if the real hot path ever
   picked up an allocation. *)

let leak_event x acc = x :: acc

let[@olia.alloc_free] dispatch x acc = leak_event x acc
