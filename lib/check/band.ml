module Json = Repro_stats.Json

type t = {
  id : string;
  metric : string;
  expected : float;
  lo : float;
  hi : float;
  source : string;
}

let make ~id ~metric ~expected ~lo ~hi ~source =
  if not (Float.is_finite lo && Float.is_finite hi && lo <= hi) then
    invalid_arg (Printf.sprintf "Band %s: empty interval [%g, %g]" id lo hi);
  { id; metric; expected; lo; hi; source }

let around ~id ~metric ?(rtol = 0.) ?(atol = 0.) ~source expected =
  let width = (rtol *. abs_float expected) +. atol in
  if width <= 0. then
    invalid_arg (Printf.sprintf "Band %s: zero-width band" id);
  make ~id ~metric ~expected ~lo:(expected -. width) ~hi:(expected +. width)
    ~source

let within ~id ~metric ~source ~expected ~lo ~hi =
  make ~id ~metric ~expected ~lo ~hi ~source

(* Loss probabilities: the packet simulator and the fluid models agree
   on goodput to ~10% but on loss only to a small factor (RED actuates
   drops very differently from the models' p(y) laws), so losses are
   checked multiplicatively. *)
let loss ~id ~metric ?(factor = 3.) ~source expected =
  if expected <= 0. then
    invalid_arg (Printf.sprintf "Band %s: loss expectation must be > 0" id);
  if factor <= 1. then
    invalid_arg (Printf.sprintf "Band %s: loss factor must be > 1" id);
  make ~id ~metric ~expected ~lo:(expected /. factor) ~hi:(expected *. factor)
    ~source

type result = { band : t; actual : float; pass : bool }

let check band actual =
  let pass =
    Float.is_finite actual && actual >= band.lo && actual <= band.hi
  in
  { band; actual; pass }

let result_to_json r =
  Json.Obj
    [
      ("id", Json.String r.band.id);
      ("metric", Json.String r.band.metric);
      ("expected", Json.Float r.band.expected);
      ("lo", Json.Float r.band.lo);
      ("hi", Json.Float r.band.hi);
      ("actual", Json.Float r.actual);
      ("pass", Json.Bool r.pass);
      ("source", Json.String r.band.source);
    ]
