type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that still round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

let write ~path j =
  let oc = open_out path in
  (try to_channel oc j
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let pp fmt j = Format.pp_print_string fmt (to_string j)
