lib/scenarios/responsiveness.ml: Common Float List Pipe Queue Repro_cc Repro_netsim Repro_stats Rng Sim Stdlib Tcp
