lib/fluid/roots.ml: Array
