(** Loss–throughput formulas for regular TCP, LIA and OLIA (paper §II and
    Eq. 2, Theorem 1).

    All rates are in packets per second ([Units]). Paths are described by
    their end-to-end loss probability and round-trip time. *)

type path = { loss : float; rtt : float }
(** One path available to a user: end-to-end loss probability [loss] and
    round-trip time [rtt] (seconds). *)

val tcp_rate : path -> float
(** The TCP loss-throughput formula [1/rtt · sqrt(2/p)] (paper Eq. (c) of
    §III-A, after Misra et al.). *)

val tcp_loss_for_rate : rtt:float -> float -> float
(** Inverse of [tcp_rate]: the loss probability at which a TCP user with
    this RTT sends at the given rate: [p = 2 / (rtt·rate)²]. *)

val best_path_rate : path list -> float
(** [max_r tcp_rate r] — the rate goal 1 of the RFC grants a multipath
    user. Raises [Invalid_argument] on an empty list. *)

val lia_rates : path list -> float list
(** LIA's fixed point (paper Eq. 2): per-path rates such that windows are
    proportional to [1/loss] and the total equals [best_path_rate] when
    RTTs are equal. With heterogeneous RTTs this implements Eq. 2
    verbatim: [w_r ∝ 1/p_r], total rate = best-path TCP rate. *)

val olia_rates : path list -> float list
(** OLIA's fixed point (Theorem 1): all traffic on the best path(s) —
    paths maximising [tcp_rate] — totalling [best_path_rate]; ties are
    split evenly. *)

val olia_rates_with_probing : path list -> float list
(** OLIA as deployed: best paths as [olia_rates], but every non-best path
    still carries the minimum probing traffic of one MSS per RTT (paper
    §VI-A2), subtracted from the best-path share. *)
