let names =
  [ "reno"; "lia"; "olia"; "olia-fp"; "balia"; "balia-fp"; "cubic";
    "scalable"; "wvegas"; "coupled:<eps>" ]

let create name =
  match name with
  | "reno" -> Reno.create ()
  | "lia" -> Lia.create ()
  | "olia" -> Olia.create ()
  | "olia-fp" -> Olia_fp.create ()
  | "balia" -> Balia.create ()
  | "balia-fp" -> Balia_fp.create ()
  | "cubic" -> Cubic.create ()
  | "scalable" -> Scalable.create ()
  | "wvegas" -> Wvegas.create ()
  | s when String.length s > 8 && String.sub s 0 8 = "coupled:" -> (
      let arg = String.sub s 8 (String.length s - 8) in
      match float_of_string_opt arg with
      | Some epsilon -> Coupled.create ~epsilon
      | None -> invalid_arg ("Registry.create: bad epsilon in " ^ s))
  | s -> invalid_arg ("Registry.create: unknown algorithm " ^ s)
