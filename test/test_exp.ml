(* Tests of the uniform experiment API (lib/exp) and the scenario
   registry: axis parsing, cross-products, determinism of the multicore
   sweep engine against the sequential runner, and a round-trip of every
   registered scenario at tiny durations. *)

module E = Mptcp_repro.Exp
module S = Mptcp_repro.Scenarios
module Json = Mptcp_repro.Stats.Json

let scen_a_spec =
  let (module Sc : S.Registry.SCENARIO) = S.Registry.find "scenario-a" in
  Sc.spec

let values_testable =
  Alcotest.testable
    (fun fmt vs ->
      Format.pp_print_string fmt
        (String.concat ";" (List.map E.Spec.value_to_string vs)))
    ( = )

let test_axis_int_range () =
  let ax = E.Sweep.axis scen_a_spec ~key:"n2" "10:40:10" in
  Alcotest.check values_testable "inclusive range"
    [ E.Spec.Int 10; E.Spec.Int 20; E.Spec.Int 30; E.Spec.Int 40 ]
    ax.E.Sweep.values;
  let ax = E.Sweep.axis scen_a_spec ~key:"n2" "1:3" in
  Alcotest.check values_testable "default step 1"
    [ E.Spec.Int 1; E.Spec.Int 2; E.Spec.Int 3 ]
    ax.E.Sweep.values

let test_axis_float_range () =
  let ax = E.Sweep.axis_of_assign scen_a_spec "c1=0.5:1.5:0.5" in
  Alcotest.check values_testable "float range"
    [ E.Spec.Float 0.5; E.Spec.Float 1.0; E.Spec.Float 1.5 ]
    ax.E.Sweep.values

let test_axis_string_list () =
  (* ':' inside a string value must not be mistaken for a range *)
  let ax = E.Sweep.axis_of_assign scen_a_spec "algo=lia,olia,coupled:0.5" in
  Alcotest.check values_testable "list with colon value"
    [ E.Spec.String "lia"; E.Spec.String "olia"; E.Spec.String "coupled:0.5" ]
    ax.E.Sweep.values

let test_axis_errors () =
  Alcotest.check_raises "unknown key"
    (Invalid_argument
       "scenario-a has no parameter \"bogus\" (valid: n1, n2, c1, c2, algo, \
        duration, warmup, seed)") (fun () ->
      ignore (E.Sweep.axis scen_a_spec ~key:"bogus" "1:2"));
  (try
     ignore (E.Sweep.axis scen_a_spec ~key:"n2" "5:1:1");
     Alcotest.fail "empty range should raise"
   with Invalid_argument _ -> ());
  try
    ignore (E.Sweep.axis scen_a_spec ~key:"n2" "x,y");
    Alcotest.fail "bad int literal should raise"
  with Invalid_argument _ -> ()

let test_points_cross_product () =
  let axes =
    [
      E.Sweep.axis_of_assign scen_a_spec "n2=10:20:10";
      E.Sweep.axis_of_assign scen_a_spec "algo=lia,olia";
      E.Sweep.seed_axis 3;
    ]
  in
  let pts =
    E.Sweep.points scen_a_spec ~fixed:[ ("duration", E.Spec.Float 5.) ] axes
  in
  Alcotest.(check int) "2*2*3 points" 12 (List.length pts);
  (* row-major: the last axis (seed) varies fastest *)
  let first = List.hd pts in
  Alcotest.(check int) "first n2" 10 (E.Spec.get_int scen_a_spec first "n2");
  Alcotest.(check string)
    "first algo" "lia"
    (E.Spec.get_string scen_a_spec first "algo");
  let seeds_of l = List.map (fun b -> E.Spec.get_int scen_a_spec b "seed") l in
  Alcotest.(check (list int))
    "seed varies fastest" [ 1; 2; 3 ]
    (seeds_of
       (List.filteri (fun i _ -> i < 3) pts));
  List.iter
    (fun b ->
      Alcotest.(check (float 0.))
        "fixed duration applies" 5.
        (E.Spec.get_float scen_a_spec b "duration"))
    pts

let tiny_bindings : (string * E.Spec.bindings) list =
  [
    ( "scenario-a",
      [
        ("n1", E.Spec.Int 4); ("n2", E.Spec.Int 4);
        ("duration", E.Spec.Float 6.); ("warmup", E.Spec.Float 2.);
      ] );
    ( "scenario-b",
      [
        ("n", E.Spec.Int 4); ("duration", E.Spec.Float 6.);
        ("warmup", E.Spec.Float 2.);
      ] );
    ( "scenario-c",
      [
        ("n1", E.Spec.Int 4); ("n2", E.Spec.Int 4);
        ("duration", E.Spec.Float 6.); ("warmup", E.Spec.Float 2.);
      ] );
    ( "two-bottleneck",
      [
        ("n_tcp1", E.Spec.Int 2); ("n_tcp2", E.Spec.Int 2);
        ("duration", E.Spec.Float 6.);
      ] );
    ( "responsiveness",
      [
        ("shock_at", E.Spec.Float 2.); ("relief_at", E.Spec.Float 4.);
        ("duration", E.Spec.Float 6.);
      ] );
    ( "wireless",
      [ ("duration", E.Spec.Float 6.); ("warmup", E.Spec.Float 2.) ] );
    ( "fattree",
      [
        ("k", E.Spec.Int 4); ("subflows", E.Spec.Int 2);
        ("duration", E.Spec.Float 2.); ("warmup", E.Spec.Float 0.5);
      ] );
    ( "fattree-dynamic",
      [
        ("k", E.Spec.Int 4); ("subflows", E.Spec.Int 2);
        ("duration", E.Spec.Float 2.5); ("warmup", E.Spec.Float 0.5);
      ] );
    ( "fattree-sharded",
      [
        ("k", E.Spec.Int 4); ("shards", E.Spec.Int 1);
        ("flows_per_host", E.Spec.Int 1);
        ("duration", E.Spec.Float 1.5); ("warmup", E.Spec.Float 0.5);
      ] );
  ]

(* the responsiveness scenario legitimately reports nan for "never
   reacted", which short shock windows can produce *)
let nan_ok name metric =
  name = "responsiveness"
  && (metric = "shock_response_s" || metric = "relief_response_s")

let test_registry_round_trip () =
  Alcotest.(check (list string))
    "tiny bindings cover the registry" S.Registry.names
    (List.map fst tiny_bindings);
  List.iter
    (fun (name, bindings) ->
      let (module Sc : S.Registry.SCENARIO) = S.Registry.find name in
      Alcotest.(check string) "spec name matches" name Sc.spec.E.Spec.name;
      E.Spec.validate Sc.spec bindings;
      let outcome = Sc.run bindings in
      Alcotest.(check bool)
        (name ^ " has metrics") true
        (outcome.E.Outcome.metrics <> []);
      List.iter
        (fun (metric, v) ->
          if not (nan_ok name metric) then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s finite (%g)" name metric v)
              true (Float.is_finite v))
        outcome.E.Outcome.metrics)
    tiny_bindings

let test_registry_unknown () =
  try
    ignore (S.Registry.find "no-such-scenario");
    Alcotest.fail "unknown scenario should raise"
  with Invalid_argument _ -> ()

let sweep_points () =
  let axes =
    [ E.Sweep.axis_of_assign scen_a_spec "algo=lia,olia"; E.Sweep.seed_axis 4 ]
  in
  E.Sweep.points scen_a_spec
    ~fixed:
      [
        ("n1", E.Spec.Int 3); ("n2", E.Spec.Int 3);
        ("duration", E.Spec.Float 4.); ("warmup", E.Spec.Float 1.);
      ]
    axes

let test_parallel_equals_sequential () =
  let sc = S.Registry.find "scenario-a" in
  let pts = sweep_points () in
  Alcotest.(check int) "8 points" 8 (List.length pts);
  let seq = E.Sweep.run_seq sc pts in
  let par = E.Sweep.run ~domains:2 sc pts in
  Alcotest.(check bool) "structurally identical" true (par = seq);
  (* ... and byte-identical once serialized *)
  Alcotest.(check string)
    "byte-identical JSON"
    (Json.to_string (E.Sweep.to_json ~spec:scen_a_spec seq))
    (Json.to_string (E.Sweep.to_json ~spec:scen_a_spec par))

let test_aggregate () =
  let sc = S.Registry.find "scenario-a" in
  let results = E.Sweep.run ~domains:2 sc (sweep_points ()) in
  let agg = E.Sweep.aggregate results in
  Alcotest.(check string) "grouped over seed" "seed" agg.E.Sweep.over;
  Alcotest.(check int) "two groups" 2 (List.length agg.E.Sweep.rows);
  List.iter
    (fun (a : E.Sweep.agg) ->
      Alcotest.(check int) "4 replications" 4 a.E.Sweep.n;
      Alcotest.(check bool)
        "seed dropped from group" false
        (List.mem_assoc "seed" a.E.Sweep.group);
      List.iter
        (fun (metric, (mean, sd)) ->
          Alcotest.(check bool)
            (metric ^ " mean finite") true (Float.is_finite mean);
          Alcotest.(check bool) (metric ^ " stddev >= 0") true (sd >= 0.))
        a.E.Sweep.stats)
    agg.E.Sweep.rows;
  (* a replicated point's mean must equal the mean of its replications *)
  let by_algo algo =
    List.filter
      (fun p ->
        E.Spec.get_string scen_a_spec p.E.Sweep.bindings "algo" = algo)
      results
  in
  let lia = by_algo "lia" in
  let manual =
    List.fold_left
      (fun acc p -> acc +. E.Outcome.metric p.E.Sweep.outcome "norm_type2")
      0. lia
    /. float_of_int (List.length lia)
  in
  let row =
    List.find
      (fun (a : E.Sweep.agg) ->
        E.Spec.get_string scen_a_spec a.E.Sweep.group "algo" = "lia")
      agg.E.Sweep.rows
  in
  let mean, _ = List.assoc "norm_type2" row.E.Sweep.stats in
  Alcotest.(check (float 1e-12)) "aggregate mean" manual mean

let test_emitters () =
  let sc = S.Registry.find "scenario-a" in
  let results = E.Sweep.run ~domains:2 sc (sweep_points ()) in
  let agg = E.Sweep.aggregate results in
  let json_path = Filename.temp_file "sweep" ".json" in
  let csv_path = Filename.temp_file "sweep" ".csv" in
  let agg_path = Filename.temp_file "sweep_agg" ".csv" in
  E.Sweep.write_json ~path:json_path ~spec:scen_a_spec ~aggregated:agg results;
  E.Sweep.write_csv ~path:csv_path ~spec:scen_a_spec results;
  E.Sweep.write_agg_csv ~path:agg_path ~spec:scen_a_spec agg;
  let read_lines path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let csv = read_lines csv_path in
  Alcotest.(check int) "csv: header + 8 rows" 9 (List.length csv);
  Alcotest.(check string)
    "csv header is params then metrics"
    "n1,n2,c1,c2,algo,duration,warmup,seed,norm_type1,norm_type2,p1,p2,obs_events,obs_max_heap_depth,obs_drops_overflow,obs_drops_red,obs_drops_random,obs_subflow_goodput_bps_type1_sf0,obs_subflow_goodput_bps_type1_sf1,obs_subflow_goodput_bps_type2_sf0"
    (List.hd csv);
  let agg_csv = read_lines agg_path in
  Alcotest.(check int) "agg csv: header + 2 rows" 3 (List.length agg_csv);
  (match read_lines json_path with
   | [ line ] ->
     let contains needle =
       let nl = String.length needle and ll = String.length line in
       let rec go i =
         i + nl <= ll && (String.sub line i nl = needle || go (i + 1))
       in
       go 0
     in
     Alcotest.(check bool)
       "json mentions every section" true
       (List.for_all contains
          [ "\"scenario\":\"scenario-a\""; "\"points\""; "\"aggregate\"";
            "\"over\":\"seed\"" ])
   | lines ->
     Alcotest.fail
       (Printf.sprintf "expected single-line JSON, got %d lines"
          (List.length lines)));
  List.iter Sys.remove [ json_path; csv_path; agg_path ]

let test_json_escaping () =
  Alcotest.(check string)
    "string escaping" "{\"a\\\"b\":[1,true,null,\"x\\ny\"]}"
    (Json.to_string
       (Json.Obj
          [
            ( "a\"b",
              Json.List
                [ Json.Int 1; Json.Bool true; Json.Null; Json.String "x\ny" ]
            );
          ]));
  Alcotest.(check string)
    "non-finite floats become null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]))

let suite =
  [
    ("axis: int range", `Quick, test_axis_int_range);
    ("axis: float range", `Quick, test_axis_float_range);
    ("axis: string list", `Quick, test_axis_string_list);
    ("axis: errors", `Quick, test_axis_errors);
    ("points: cross product", `Quick, test_points_cross_product);
    ("registry: round trip", `Slow, test_registry_round_trip);
    ("registry: unknown name", `Quick, test_registry_unknown);
    ("sweep: parallel = sequential", `Slow, test_parallel_equals_sequential);
    ("sweep: aggregation", `Slow, test_aggregate);
    ("sweep: emitters", `Slow, test_emitters);
    ("json: escaping", `Quick, test_json_escaping);
  ]
