lib/scenarios/scen_a.ml: Common List Pipe Queue Repro_cc Repro_netsim Rng Sim Tcp
