lib/topology/duplex.mli: Repro_netsim
