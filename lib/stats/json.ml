type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 || Char.code c = 0x7f ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that still round-trips *)
    let s = Printf.sprintf "%.12g" f in
    let s =
      if float_of_string s = f then s else Printf.sprintf "%.17g" f
    in
    (* keep the token float-typed, so parsing the document back yields
       [Float 1.] for [Float 1.], not [Int 1] *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

let write ~path j =
  let oc = open_out path in
  (try to_channel oc j
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* --- parsing ------------------------------------------------------- *)

exception Parse_error of int * string

let parse_fail pos msg = raise (Parse_error (pos, msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' ->
      parse_fail !pos (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> parse_fail !pos (Printf.sprintf "expected '%c', found end" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then (
      pos := !pos + m;
      v)
    else parse_fail !pos ("invalid literal, expected " ^ word)
  in
  (* codepoint -> UTF-8 bytes; surrogate pairs are combined by the caller *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f))))
    else if cp < 0x10000 then (
      Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f))))
    else (
      Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f))))
  in
  let hex4 () =
    if !pos + 4 > n then parse_fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> parse_fail !pos "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents b
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> parse_fail !pos "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            let cp = hex4 () in
            let cp =
              (* high surrogate: a \uXXXX low surrogate must follow *)
              if cp >= 0xd800 && cp <= 0xdbff then
                if
                  !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then (
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
                  else parse_fail !pos "invalid low surrogate")
                else parse_fail !pos "unpaired high surrogate"
              else cp
            in
            add_utf8 b cp
          | c -> parse_fail !pos (Printf.sprintf "bad escape '\\%c'" c)));
        loop ()
      | Some c ->
        advance ();
        Buffer.add_char b c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    while is_digit () do
      advance ()
    done;
    let is_float = ref false in
    if peek () = Some '.' then (
      is_float := true;
      advance ();
      while is_digit () do
        advance ()
      done);
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      while is_digit () do
        advance ()
      done
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> parse_fail start ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* integer token too large for an int: keep it as a float *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> parse_fail start ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        List [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> parse_fail !pos "expected ',' or ']'"
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (kv :: acc))
          | _ -> parse_fail !pos "expected ',' or '}'"
        in
        fields []
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then parse_fail !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)
