(** Tolerance bands: the unit of conformance.

    A band declares what a metric is expected to be, the interval in
    which the packet simulator's measurement is accepted, and the paper
    reference that justifies the expectation. Checking a band against a
    measured value yields a {!result}; a conformance report is a list
    of them. Everything here is a pure value — deterministic runs
    produce byte-identical reports. *)

type t = private {
  id : string;  (** unique slug, e.g. ["a.lia.norm_type1"] *)
  metric : string;  (** outcome metric the band constrains *)
  expected : float;  (** the model's prediction (band center or edge) *)
  lo : float;
  hi : float;
  source : string;  (** paper/model reference justifying the band *)
}

val around :
  id:string ->
  metric:string ->
  ?rtol:float ->
  ?atol:float ->
  source:string ->
  float ->
  t
(** [around expected] accepts
    [expected ± (rtol·|expected| + atol)]. Raises [Invalid_argument]
    on a zero-width band. *)

val within :
  id:string ->
  metric:string ->
  source:string ->
  expected:float ->
  lo:float ->
  hi:float ->
  t
(** An explicit interval, for metrics bracketed by two models (e.g.
    OLIA between the LIA fixed point and the probing optimum). *)

val loss :
  id:string -> metric:string -> ?factor:float -> source:string -> float -> t
(** [loss expected] accepts [\[expected/factor, expected·factor\]]
    (default factor 3): loss probabilities agree with the fluid models
    only multiplicatively. *)

type result = { band : t; actual : float; pass : bool }

val check : t -> float -> result
(** Non-finite actuals never pass. *)

val result_to_json : result -> Repro_stats.Json.t
