open Repro_netsim

type config = {
  n1 : int;
  n2 : int;
  c1_mbps : float;
  c2_mbps : float;
  algo : string;
  duration : float;
  warmup : float;
  seed : int;
}

let default =
  {
    n1 = 10;
    n2 = 10;
    c1_mbps = 1.;
    c2_mbps = 1.;
    algo = "olia";
    duration = 120.;
    warmup = 30.;
    seed = 1;
  }

type result = {
  norm_type1 : float;
  norm_type2 : float;
  p1 : float;
  p2 : float;
  obs : Repro_obs.Meter.report;
}

let run cfg =
  let meter = Repro_obs.Meter.start () in
  let sim = Sim.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let rate1 = float_of_int cfg.n1 *. cfg.c1_mbps *. 1e6 in
  let rate2 = float_of_int cfg.n2 *. cfg.c2_mbps *. 1e6 in
  let mk_queue rate name =
    Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps:rate
      ~buffer_pkts:(Common.bottleneck_buffer ~rate_bps:rate)
      ~discipline:(Common.red_for ~rate_bps:rate) ~name ()
  in
  let q1 = mk_queue rate1 "server" and q2 = mk_queue rate2 "sharedAP" in
  let one_way = Common.paper_propagation_delay /. 2. in
  let fwd_pipe = Pipe.create ~sim ~delay:one_way in
  let rev_pipe = Pipe.create ~sim ~delay:one_way in
  let rev = [| Pipe.hop rev_pipe |] in
  let factory = Common.factory_of_name cfg.algo in
  let starts = ref [] in
  let next_start () =
    let s = Rng.uniform rng 2. in
    starts := s :: !starts;
    s
  in
  let type1 =
    List.init cfg.n1 (fun i ->
        let paths =
          [|
            { Tcp.fwd = [| Queue.hop q1; Pipe.hop fwd_pipe |]; rev };
            {
              Tcp.fwd = [| Queue.hop q1; Queue.hop q2; Pipe.hop fwd_pipe |];
              rev;
            };
          |]
        in
        Tcp.create ~sim ~cc:(factory ()) ~paths ~start:(next_start ())
          ~flow_id:i ())
  in
  let type2 =
    List.init cfg.n2 (fun i ->
        let paths =
          [| { Tcp.fwd = [| Queue.hop q2; Pipe.hop fwd_pipe |]; rev } |]
        in
        Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths
          ~start:(next_start ()) ~flow_id:(cfg.n1 + i) ())
  in
  ignore
    (Sim.schedule_at ~src:"scenario.warmup" sim cfg.warmup (fun () ->
         Queue.reset_stats q1;
         Queue.reset_stats q2)
      : Sim.Timer.t);
  let measured =
    Common.measure_conns ~sim ~warmup:cfg.warmup ~duration:cfg.duration
      (type1 @ type2)
  in
  let rates = List.map (fun m -> m.Common.goodput_mbps) measured in
  let r1, r2 = Common.split_at cfg.n1 rates in
  let m1, m2 = Common.split_at cfg.n1 measured in
  {
    norm_type1 = Common.mean r1 /. cfg.c1_mbps;
    norm_type2 = Common.mean r2 /. cfg.c2_mbps;
    p1 = Queue.loss_probability q1;
    p2 = Queue.loss_probability q2;
    obs =
      Common.observe ~meter ~sim
        ~subflow_goodput_bps:
          (Common.subflow_goodput_bps ~label:"type1" ~subflows:2 m1
          @ Common.subflow_goodput_bps ~label:"type2" ~subflows:1 m2)
        [ q1; q2 ];
  }

let replicate cfg ~seeds = List.map (fun seed -> run { cfg with seed }) seeds
