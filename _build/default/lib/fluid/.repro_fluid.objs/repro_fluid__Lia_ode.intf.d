lib/fluid/lia_ode.mli: Network_model
