(** CUBIC (Ha, Rhee, Xu, 2008) — the other RTT-fairness escape hatch the
    paper's Remark 3 mentions.

    The window follows [W(t) = C·(t − K)³ + W_max] after a loss, where
    [W_max] is the window at the loss, [K = (W_max·β/C)^(1/3)], [C = 0.4]
    and the multiplicative decrease is [β = 0.3].

    Time is tracked virtually: every ACK advances the epoch clock by
    [rtt/cwnd] (one window of ACKs per RTT), which makes the module
    usable behind the clock-free [Cc_types] interface. *)

val create : ?c:float -> ?beta:float -> unit -> Cc_types.t
(** Raises [Invalid_argument] unless [c > 0] and [0 < beta < 1]. *)
