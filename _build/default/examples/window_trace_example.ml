(* Window/alpha traces: the asymmetric two-bottleneck example of the
   paper's Fig. 8. One OLIA connection over two 10 Mb/s links — the first
   shared with 5 TCP flows, the second with 10. OLIA should keep a minimal
   window on the congested path, probing it only when its inter-loss
   volume looks attractive.

   Run with:  dune exec examples/window_trace_example.exe *)

module Tb = Mptcp_repro.Scenarios.Two_bottleneck
module Ts = Mptcp_repro.Stats.Timeseries

let bar width value scale =
  let n = int_of_float (value /. scale *. float_of_int width) in
  let n = Stdlib.max 0 (Stdlib.min width n) in
  String.make n '#' ^ String.make (width - n) ' '

let () =
  let cfg = { Tb.asymmetric with duration = 60. } in
  Printf.printf
    "Two bottlenecks (10 Mb/s each): path1 shared with %d TCP flows, \
     path2 with %d.\nOLIA windows sampled every 2 s:\n\n"
    cfg.n_tcp1 cfg.n_tcp2;
  let t = Tb.run cfg in
  let w1 = Ts.resample t.w1 ~dt:2. ~from:2. ~until:cfg.duration in
  let w2 = Ts.resample t.w2 ~dt:2. ~from:2. ~until:cfg.duration in
  let a2 = Ts.resample t.alpha2 ~dt:2. ~from:2. ~until:cfg.duration in
  Printf.printf "%5s  %-22s %-22s %6s\n" "t(s)" "w1 (good path)"
    "w2 (congested path)" "alpha2";
  Array.iteri
    (fun i _ ->
      Printf.printf "%5.0f  [%s] [%s] %+.2f\n"
        (2. +. (2. *. float_of_int i))
        (bar 20 w1.(i) 30.)
        (bar 20 w2.(i) 30.)
        a2.(i))
    w1;
  Printf.printf
    "\ngoodput: path1 %.2f Mb/s, path2 %.2f Mb/s; window flips: %d\n"
    t.goodput1_mbps t.goodput2_mbps t.flip_count;
  print_endline
    "w2 stays near one packet: OLIA sends only probing traffic on the\n\
     congested path, as in the paper's Fig. 8."
