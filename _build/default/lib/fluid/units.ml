let mss_bytes = 1500
let mss_bits = float_of_int (8 * mss_bytes)
let pps_of_mbps m = m *. 1e6 /. mss_bits
let mbps_of_pps p = p *. mss_bits /. 1e6
let probe_rate ~rtt = 1. /. rtt
