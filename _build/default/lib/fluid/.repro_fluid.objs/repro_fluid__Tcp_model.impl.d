lib/fluid/tcp_model.ml: List Stdlib Units
