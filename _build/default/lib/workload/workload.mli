(** Traffic workload generators: declarative flow schedules consumed by
    the scenario builders. All generators are deterministic given the
    RNG. *)

type flow_spec = {
  start : float;  (** arrival time, seconds *)
  size_pkts : int option;  (** [None] = long-lived (runs forever) *)
  src : int;  (** host index (topology-dependent) *)
  dst : int;
}

val staggered_starts :
  rng:Repro_netsim.Rng.t -> n:int -> max_jitter:float -> float array
(** [n] start times uniform in [\[0, max_jitter)] — the paper's "flows are
    initiated in random order". *)

val permutation_long_flows :
  rng:Repro_netsim.Rng.t -> hosts:int -> max_jitter:float -> flow_spec list
(** One long-lived flow per host to a distinct random destination (no
    host sends to itself): the FatTree workload of Fig. 13. *)

val poisson_short_flows :
  rng:Repro_netsim.Rng.t ->
  src:int ->
  dst:int ->
  mean_interval:float ->
  size_pkts:int ->
  duration:float ->
  flow_spec list
(** Short flows of fixed size from [src] to [dst], arriving as a Poisson
    process of the given mean inter-arrival time, truncated at
    [duration] (Fig. 14: 70 kB every 200 ms on average). *)

val short_flow_pkts : int
(** 70 kB in MSS-sized packets (= 47), the paper's short-flow size. *)
