lib/netsim/path_manager.mli: Sim Tcp
