(** Responsiveness experiment: the paper's central design claim is that
    OLIA is "as responsive and non-flappy as LIA" despite being
    Pareto-optimal (§I, §II — the ε-tradeoff).

    One multipath user runs over two equal bottlenecks. Path 2 starts
    clean; at [shock_at] a burst of [n_shock] TCP flows joins it, and at
    [relief_at] they stop. We measure how quickly the multipath user
    moves traffic off the newly congested path and how quickly it
    reclaims the capacity when it frees up. *)

type config = {
  c_mbps : float;
  n_shock : int;  (** TCP flows that slam into path 2 *)
  shock_at : float;
  relief_at : float;
  duration : float;
  algo : string;
  seed : int;
}

val default : config
(** 10 Mb/s links, 8-flow shock at t = 60 s, relief at t = 120 s,
    180 s total, OLIA. *)

type result = {
  pre_shock_share : float;
      (** fraction of the user's goodput carried by path 2 before the
          shock *)
  shock_response_s : float;
      (** time after the shock until path 2's window share first drops
          below half its pre-shock level (nan = never) *)
  relief_response_s : float;
      (** time after the relief until path 2's window share first rises
          back above half its pre-shock level (nan = never) *)
  post_relief_share : float;
      (** path-2 goodput share at the end — did the user reclaim it? *)
}

val run : config -> result
