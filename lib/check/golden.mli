(** Golden-trace regression tests.

    Four small canonical simulations — a Reno transfer through a tight
    droptail bottleneck, an OLIA transfer over two asymmetric paths,
    the same transfer on the [olia-fp] fixed-point kernel twin, and a
    finite transfer through a flapping link — have their full
    {!Repro_obs.Trace} event streams recorded as JSONL under
    [test/golden/]. A {!check} re-runs the scenario and diffs the
    semantic event sequence against the recorded one, zeroing all
    timestamps first: intentional behaviour changes require
    re-recording with [olia_sim check --update-golden]. *)

val names : string list
(** The canonical scenario names (also the golden file basenames). *)

val record : string -> Repro_obs.Trace.event list
(** Run a canonical scenario with a capturing trace sink and return its
    event stream. Raises [Invalid_argument] on an unknown name.
    Installs and removes the process-global sink — not for use around
    concurrent traced runs. *)

val update : dir:string -> string -> unit
(** Re-record one scenario's golden file ([<dir>/<name>.jsonl]). *)

val update_all : dir:string -> unit

val check : dir:string -> string -> (unit, string) result
(** Re-run the scenario and compare against the golden file. The error
    carries a first-divergence diagnostic (event index, golden vs got,
    both with timestamps zeroed). *)

(** {2 Golden reports}

    A canonical flight-recorder document: a small fixed-seed Scenario B
    run analyzed with {!Repro_obs.Report} and pinned as JSON under
    [test/golden/]. Timestamps are kept — the report is a pure function
    of the seed — and the comparison is semantic: both sides are parsed
    and re-serialized, so only value changes register. *)

val report_names : string list
(** The canonical report names (also the golden file basenames,
    [<name>.json]). *)

val record_report : string -> Repro_stats.Json.t
(** Run the canonical scenario with a report-feeding sink and return the
    report document. Raises [Invalid_argument] on an unknown name; same
    process-global sink caveat as {!record}. *)

val update_report : dir:string -> string -> unit
(** Re-record one golden report ([<dir>/<name>.json]). *)

val check_report : dir:string -> string -> (unit, string) result
(** Re-run and compare semantically against the golden report; the error
    pinpoints the first diverging byte of the canonical forms.
    [update_all] refreshes golden reports along with golden traces. *)
