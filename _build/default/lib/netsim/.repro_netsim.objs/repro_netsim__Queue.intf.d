lib/netsim/queue.mli: Packet Rng Sim
