lib/topology/fattree.mli: Repro_netsim
