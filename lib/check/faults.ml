open Repro_netsim
module SC = Repro_scenarios.Common

(* Fault-recovery conformance scenarios. Each builds a small topology
   around a [Fault] gate, measures goodput over windows placed before,
   during and after the injected episode, and returns a flat metric
   list for the generic band checker. Everything is driven by the
   seeded Rng and the simulator clock, so a fixed seed gives a
   byte-identical metric list on every run. *)

let capacity_mbps = 8.
let one_way = SC.paper_propagation_delay /. 2.

let sample_total ~sim conn t =
  let r = ref 0 in
  ignore
    (Sim.schedule_at ~src:"check.sample" sim t (fun () ->
         r := Tcp.total_acked conn)
      : Sim.Timer.t);
  r

let sample_subflow ~sim conn s t =
  let r = ref 0 in
  ignore
    (Sim.schedule_at ~src:"check.sample" sim t (fun () ->
         r := Tcp.subflow_acked conn s)
      : Sim.Timer.t);
  r

let window_mbps a b ~t0 ~t1 =
  SC.mbps_of_pps (float_of_int (!b - !a) /. (t1 -. t0))

let mk_queue ~sim ~rng name =
  let rate_bps = capacity_mbps *. 1e6 in
  Queue.create ~sim ~rng:(Rng.split rng) ~rate_bps
    ~buffer_pkts:(SC.bottleneck_buffer ~rate_bps) ~discipline:Queue.Droptail
    ~name ()

(* --- link flap --------------------------------------------------------- *)

(* One OLIA connection over two disjoint 8 Mb/s paths; path 0 goes dark
   over [40 s, 70 s). The outage length is chosen against the RTO
   backoff (doubling, capped at 60 s): the retry ladder started at the
   outage probes again around t ≈ 78 s, so the connection re-
   establishes the subflow well before the recovery window. *)
let flap_down_at = 40.
let flap_up_at = 70.

let link_flap ~seed =
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let q0 = mk_queue ~sim ~rng "path0" and q1 = mk_queue ~sim ~rng "path1" in
  let pipe () = Pipe.create ~sim ~delay:one_way in
  let fwd0 = pipe () and rev0 = pipe () and fwd1 = pipe () and rev1 = pipe () in
  let gate = Fault.create ~sim ~rng:(Rng.split rng) ~name:"gate0" () in
  let paths =
    [|
      {
        Tcp.fwd = [| Fault.hop gate; Queue.hop q0; Pipe.hop fwd0 |];
        rev = [| Fault.hop gate; Pipe.hop rev0 |];
      };
      { Tcp.fwd = [| Queue.hop q1; Pipe.hop fwd1 |]; rev = [| Pipe.hop rev1 |] };
    |]
  in
  let conn =
    Tcp.create ~sim ~cc:(Repro_cc.Olia.create ()) ~paths ~flow_id:0 ()
  in
  Fault.schedule_flap gate ~down_at:flap_down_at ~up_at:flap_up_at;
  let pre0 = sample_total ~sim conn 10. and pre1 = sample_total ~sim conn 40. in
  let down0 = sample_total ~sim conn 45.
  and down1 = sample_total ~sim conn 68. in
  let sf_down0 = sample_subflow ~sim conn 0 45.
  and sf_down1 = sample_subflow ~sim conn 0 68. in
  let post0 = sample_total ~sim conn 95.
  and post1 = sample_total ~sim conn 120. in
  let sf_post0 = sample_subflow ~sim conn 0 80.
  and sf_post1 = sample_subflow ~sim conn 0 120. in
  Sim.run_until sim 120.;
  [
    ("pre_mbps", window_mbps pre0 pre1 ~t0:10. ~t1:40.);
    ("down_mbps", window_mbps down0 down1 ~t0:45. ~t1:68.);
    ("down_subflow0_mbps", window_mbps sf_down0 sf_down1 ~t0:45. ~t1:68.);
    ("post_mbps", window_mbps post0 post1 ~t0:95. ~t1:120.);
    ("reprobed_pkts", float_of_int (!sf_post1 - !sf_post0));
    ("fault_dropped", float_of_int (Fault.dropped gate));
  ]

let link_flap_bands =
  let both = 2. *. capacity_mbps and one = capacity_mbps in
  [
    Band.within ~id:"fault.flap.pre" ~metric:"pre_mbps"
      ~source:"two saturated 8 Mb/s bottlenecks (fluid: x = C per path)"
      ~expected:both ~lo:(0.85 *. both) ~hi:(1.02 *. both);
    Band.within ~id:"fault.flap.down" ~metric:"down_mbps"
      ~source:"surviving path's fluid prediction: x = C of path 1"
      ~expected:one ~lo:(0.85 *. one) ~hi:(1.02 *. one);
    Band.within ~id:"fault.flap.rerouted" ~metric:"down_subflow0_mbps"
      ~source:"OLIA reroutes: the dead subflow carries nothing"
      ~expected:0. ~lo:0. ~hi:0.05;
    (* After the gate reopens the aggregate must at least hold the
       surviving path's prediction; full re-saturation of path 0 is NOT
       required within the run: repeated RTOs collapsed its ssthresh to
       the floor and OLIA re-probes a recently lossy path only through
       its coupled (w_r/W²-sized) increase — the responsiveness
       trade-off of the paper's §VII. *)
    Band.within ~id:"fault.flap.post" ~metric:"post_mbps"
      ~source:"at least the surviving path's fluid prediction after the flap"
      ~expected:one ~lo:(0.85 *. one) ~hi:(1.02 *. both);
    Band.within ~id:"fault.flap.reprobed" ~metric:"reprobed_pkts"
      ~source:"the flapped subflow must carry traffic again once the link \
               is back"
      ~expected:100. ~lo:10. ~hi:1e7;
    Band.within ~id:"fault.flap.drops" ~metric:"fault_dropped"
      ~source:"the outage must actually swallow traffic"
      ~expected:10. ~lo:1. ~hi:10_000.;
  ]

(* --- burst loss -------------------------------------------------------- *)

(* One Reno connection through a single 8 Mb/s bottleneck; a 30% burst-
   loss episode over [40 s, 50 s) knocks the rate down (fluid:
   p = 0.3 caps TCP at (1/rtt)·sqrt(3/(2·0.3)) ≈ 0.4 Mb/s), and the
   post window checks it climbs back to the capacity. *)
let burst_at = 40.
let burst_until = 50.
let burst_loss_prob = 0.3

let burst_loss ~seed =
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let q = mk_queue ~sim ~rng "bottleneck" in
  let fwd = Pipe.create ~sim ~delay:one_way in
  let rev = Pipe.create ~sim ~delay:one_way in
  let gate = Fault.create ~sim ~rng:(Rng.split rng) ~name:"burst" () in
  let paths =
    [|
      {
        Tcp.fwd = [| Fault.hop gate; Queue.hop q; Pipe.hop fwd |];
        rev = [| Pipe.hop rev |];
      };
    |]
  in
  let conn =
    Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths ~flow_id:0 ()
  in
  Fault.schedule_burst gate ~at:burst_at ~until:burst_until
    ~loss_prob:burst_loss_prob;
  let pre0 = sample_total ~sim conn 10. and pre1 = sample_total ~sim conn 40. in
  let in0 = sample_total ~sim conn 40. and in1 = sample_total ~sim conn 50. in
  let post0 = sample_total ~sim conn 60.
  and post1 = sample_total ~sim conn 120. in
  Sim.run_until sim 120.;
  [
    ("pre_mbps", window_mbps pre0 pre1 ~t0:10. ~t1:40.);
    ("burst_mbps", window_mbps in0 in1 ~t0:40. ~t1:50.);
    ("post_mbps", window_mbps post0 post1 ~t0:60. ~t1:120.);
    ("fault_dropped", float_of_int (Fault.dropped gate));
  ]

let burst_loss_bands =
  let c = capacity_mbps in
  [
    Band.within ~id:"fault.burst.pre" ~metric:"pre_mbps"
      ~source:"saturated 8 Mb/s bottleneck (fluid: x = C)" ~expected:c
      ~lo:(0.85 *. c) ~hi:(1.02 *. c);
    Band.within ~id:"fault.burst.during" ~metric:"burst_mbps"
      ~source:"p = 0.3 caps the TCP rate near (1/rtt)·sqrt(3/2p)"
      ~expected:0.4 ~lo:0. ~hi:(0.25 *. c);
    Band.within ~id:"fault.burst.post" ~metric:"post_mbps"
      ~source:"recovery: capacity again once the episode ends" ~expected:c
      ~lo:(0.85 *. c) ~hi:(1.02 *. c);
    Band.within ~id:"fault.burst.drops" ~metric:"fault_dropped"
      ~source:"the episode must actually drop data" ~expected:20. ~lo:1.
      ~hi:10_000.;
  ]

(* --- reordering -------------------------------------------------------- *)

(* A finite Reno transfer through a reordering window: a quarter of the
   packets are held back by 30 ms (several times the serialization
   time), forcing dupACK/SACK handling. Delivery must still be exact —
   the conservation property fault injection must never break. *)
let reorder ~seed =
  let size = 2000 in
  let sim = Sim.create () in
  let rng = Rng.create ~seed in
  let q = mk_queue ~sim ~rng "bottleneck" in
  let fwd = Pipe.create ~sim ~delay:one_way in
  let rev = Pipe.create ~sim ~delay:one_way in
  let gate = Fault.create ~sim ~rng:(Rng.split rng) ~name:"reorder" () in
  let paths =
    [|
      {
        Tcp.fwd = [| Queue.hop q; Fault.hop gate; Pipe.hop fwd |];
        rev = [| Pipe.hop rev |];
      };
    |]
  in
  let conn =
    Tcp.create ~sim ~cc:(Repro_cc.Reno.create ()) ~paths ~size_pkts:size
      ~flow_id:0 ()
  in
  Fault.schedule_reorder gate ~at:1. ~until:30. ~prob:0.25 ~extra_delay:0.03;
  Sim.run_until sim 300.;
  [
    ("completed", if Tcp.completed conn then 1. else 0.);
    ("delivered", float_of_int (Tcp.total_acked conn));
    ("reordered", float_of_int (Fault.reordered gate));
  ]

let reorder_bands =
  [
    Band.within ~id:"fault.reorder.completed" ~metric:"completed"
      ~source:"reliable delivery despite reordering" ~expected:1. ~lo:1. ~hi:1.;
    Band.within ~id:"fault.reorder.delivered" ~metric:"delivered"
      ~source:"exactly the transfer size, no duplicates counted"
      ~expected:2000. ~lo:2000. ~hi:2000.;
    Band.within ~id:"fault.reorder.active" ~metric:"reordered"
      ~source:"the window must actually reorder packets" ~expected:100. ~lo:1.
      ~hi:1e6;
  ]
