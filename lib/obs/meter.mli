(** Per-run counters and timers.

    [let m = Meter.start ()] before the event loop, then
    [Meter.finish m ~sim_s ... ] with the simulator's own counters
    yields a {!report}: how long the run took on the wall, how that
    relates to simulated time, and where packets were dropped. *)

type t

val start : unit -> t
(** Capture the wall-clock start of a run. *)

type report = {
  wall_s : float;  (** wall-clock duration of the run *)
  sim_s : float;  (** simulated seconds covered *)
  wall_per_sim_s : float;  (** wall seconds per simulated second *)
  events_processed : int;  (** events the sim loop dispatched *)
  max_heap_depth : int;  (** event-heap high-water mark *)
  drops_overflow : int;  (** data drops from full buffers *)
  drops_red : int;  (** data drops from RED early marking *)
  drops_random : int;  (** drops from lossy links *)
  subflow_goodput_bps : (string * float) list;
      (** labelled per-subflow goodputs, bit/s (e.g.
          [("type1_sf0", 9.1e5)]); empty when a scenario does not
          export them *)
}

val finish :
  t ->
  sim_s:float ->
  events_processed:int ->
  max_heap_depth:int ->
  drops_overflow:int ->
  drops_red:int ->
  drops_random:int ->
  subflow_goodput_bps:(string * float) list ->
  report

type shard_counters = {
  shard : int;
  events_processed : int;
  max_heap_depth : int;
}
(** One shard's deterministic loop counters in a sharded run. *)

val merge_shards : shard_counters list -> int * int
(** [(total events, max heap depth)] merged in ascending shard order —
    a deterministic reduction, so the merged values feed the same
    [obs_*] metrics a 1-shard run reports. *)

val shards_to_json : shard_counters list -> Repro_stats.Json.t
(** Per-shard breakdown (ascending shards) for operator-facing
    output. *)

val metrics : report -> (string * float) list
(** The deterministic counters as [("obs_*", v)] pairs, suitable for
    [Exp.Outcome]; each [subflow_goodput_bps] entry becomes
    [obs_subflow_goodput_bps_<label>]. Wall timers are deliberately
    excluded: sweep results must be byte-reproducible across runs and
    domain counts. *)

val to_json : report -> Repro_stats.Json.t
(** The full report, wall timers included. *)
