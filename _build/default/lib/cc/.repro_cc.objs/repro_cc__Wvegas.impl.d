lib/cc/wvegas.ml: Array Cc_types Stdlib
