(** Debug-time invariant checks for the fluid solvers — the
    [Repro_netsim.Invariant] discipline applied to root finding and the
    equilibrium iteration: converged answers must actually satisfy the
    equations they claim to solve (finite, inside the bracket, residual
    below the solver tolerance).

    Armed by [OLIA_DEBUG_INVARIANTS=1] (same switch as the simulator
    invariants, so the CI matrix leg arms both) or programmatically via
    {!set_enabled}. Disarmed, every check site costs one ref read. *)

exception Violation of string
(** Raised by {!require} when an armed check fails. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val require : bool -> string -> unit
(** [require cond msg] raises [Violation msg] unless [cond]. Call sites
    guard with {!enabled} so message construction is free when off. *)
