(* Deliberately unparseable: the resilience tests feed this file to the
   engine and expect a single Parse finding, not an exception, and the
   whole-program pass must still run over every other file. *)
let broken = (fun x ->
