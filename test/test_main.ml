let () =
  Alcotest.run "mptcp_repro"
    [
      ("stats", Test_stats.suite);
      ("fluid", Test_fluid.suite);
      ("equilibrium", Test_equilibrium.suite);
      ("cc", Test_cc.suite);
      ("fixedpoint", Test_fixedpoint.suite);
      ("netsim", Test_netsim.suite);
      ("timer", Test_timer.suite);
      ("tcp", Test_tcp.suite);
      ("topology", Test_topology.suite);
      ("shard", Test_shard.suite);
      ("scenarios", Test_scenarios.suite);
      ("exp", Test_exp.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("infra", Test_infra.suite);
      ("failure", Test_failure.suite);
      ("common", Test_common.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
    ]
