lib/stats/csv.ml: Array List Printf String Timeseries
