(** Declarative topology construction: name the nodes, join them with
    duplex links, and extract ready-to-use MPTCP paths routed over the
    shortest / k-shortest / edge-disjoint routes of the resulting graph.

    This generalizes the hand-wired scenario topologies: any testbed the
    paper's Click router could emulate can be described here. *)

type t

val create :
  sim:Repro_netsim.Sim.t -> rng:Repro_netsim.Rng.t -> unit -> t

val add_node : t -> string -> unit
(** Declare a node. Raises [Invalid_argument] on duplicates. *)

val node_count : t -> int

val link :
  t ->
  string ->
  string ->
  rate_mbps:float ->
  delay_ms:float ->
  ?buffer_pkts:int ->
  ?red:bool ->
  ?weight:float ->
  unit ->
  unit
(** Join two declared nodes with a duplex link. [red] selects the paper's
    RED profile (default) or DropTail; [buffer_pkts] defaults to the
    scenario convention (300 packets at 10 Mb/s, scaled). [weight]
    affects routing only (default 1). *)

val queue : t -> string -> string -> Repro_netsim.Queue.t
(** The queue serving the [a]→[b] direction of the link joining the two
    nodes. Raises [Not_found] if no such link exists. *)

val path : t -> src:string -> dst:string -> Repro_netsim.Tcp.path
(** Forward and reverse hop arrays along the shortest route. Raises
    [Not_found] if disconnected, [Invalid_argument] if [src = dst]. *)

val paths :
  t ->
  src:string ->
  dst:string ->
  ?disjoint:bool ->
  k:int ->
  unit ->
  Repro_netsim.Tcp.path array
(** Up to [k] routes: Yen's k-shortest by default, or a maximal
    edge-disjoint set when [disjoint] is set (at most [k] of them) —
    natural MPTCP subflow placements. *)
