test/test_properties.ml: Array Gen List Mptcp_repro Packet Pipe QCheck QCheck_alcotest Queue Rng Sim Stdlib Tcp
