lib/cc/lia.ml: Array Cc_types Stdlib
