examples/quickstart.mli:
