(** Fluid model of OLIA as a differential inclusion (paper Eq. 8, §V).

    Integrates [dx_r/dt = x_r²(1/rtt_r²/(Σ_p x_p)² − p_r/2) + ᾱ_r/rtt_r²]
    with the set-valued [ᾱ] of Eq. 9 resolved by tolerance-based
    membership in the best-path set [B] and max-window set [M]. Used to
    verify Theorems 1, 3 and 4 numerically. *)

type options = {
  dt : float;  (** Euler step, default 1e-3 *)
  t_end : float;  (** default 400. *)
  min_rate : float;  (** rate floor, emulating the 1-MSS window floor *)
  set_tolerance : float;
      (** relative tolerance for membership in [B] and [M], the numerical
          stand-in for the convexification of Eq. 9 *)
}

val default_options : options

type result = {
  rates : float array array;  (** final per-user per-route rates *)
  utility_trace : (float * float) array;
      (** [(t, V(x(t)))] samples of the equal-RTT utility of §V-C *)
  alpha_trace : (float * float array array) array;
      (** sampled [ᾱ] values, for the Fig. 7/8-style fluid traces *)
}

val alphas :
  tolerance:float -> Network_model.user -> x:float array -> losses:float array
  -> float array
(** The OLIA [α_r] of Eq. 6 for one user: [+ (1/|R|)/|B\M|] on presumably
    best paths without maximal windows, [− (1/|R|)/|M|] on maximal-window
    paths when such better paths exist, 0 otherwise. Windows are
    [x_r·rtt_r] and path quality is ranked by [1/(p_r·rtt_r²)]. *)

val derivative :
  ?set_tolerance:float ->
  Network_model.t ->
  float array array ->
  float array array
(** The right-hand side of Eq. 8 at the given rate allocation. *)

val integrate :
  ?options:options ->
  Network_model.t ->
  x0:float array array ->
  result
(** Forward-Euler integration from [x0], flooring each rate at
    [min_rate]. *)

val uniform_start : Network_model.t -> rate:float -> float array array
(** An allocation giving every route the same rate. *)
