(** Event-loop profiler: dispatch counts and wall time per event source.

    Same guard discipline as {!Trace}: {!enabled} is one ref read, and
    [Sim.schedule_at] only wraps a callback in {!dispatch} when the
    profiler was armed at scheduling time, so the profiling-off path
    costs one ref read per schedule and nothing per dispatch.

    Sources are the [~src] labels scheduling sites pass (e.g.
    ["queue.serve"], ["tcp.rto"]); unlabelled sites pool under
    ["other"]. Wall times are non-deterministic by nature, so profile
    output never feeds the deterministic report JSON — the CLI renders
    it separately ([olia_sim run --profile]), and [OLIA_PROFILE=1]
    arms the profiler at startup and dumps the table to stderr at
    exit. The accumulator is process-global; profile single-domain
    runs only. *)

val enabled : unit -> bool
(** One ref read; the scheduler checks it at scheduling time. *)

val set_enabled : bool -> unit
(** Arm or disarm the profiler (accumulated totals are kept). *)

val reset : unit -> unit
(** Drop all accumulated totals. *)

val dispatch : src:string -> (unit -> unit) -> unit
(** Run the callback, attributing one dispatch and its wall time to
    [src]. Nested dispatches each account their own full span. *)

type entry = { src : string; count : int; wall_s : float }

val report : unit -> entry list
(** Accumulated totals, hottest first (ties alphabetical). *)

val to_table : entry list -> Repro_stats.Table.t
(** Text rendering with per-source dispatches, wall ms and wall %. *)
