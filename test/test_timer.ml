(* The Timer.t half of the scheduler API: cancellation, rescheduling,
   periodic timers, and the hierarchical timing wheel behind them. The
   centrepiece is a model-based property checking the wheel dispatches
   exactly like a reference (time, seq) heap over random workloads of
   schedule/cancel/reschedule — the wheel is an optimization, never a
   semantic change. A final test pins the performance contract: the
   steady-state packet path allocates nothing on the minor heap. *)

open Mptcp_repro.Netsim

(* --- reference model --------------------------------------------------- *)

(* One pending event as the specification sees it: fire in ascending
   (time, seq) order, seq taken at scheduling (or rescheduling) time. *)
type model_ev = { id : int; mutable m_time : float; mutable m_seq : int }

let model_compare a b =
  let c = compare a.m_time b.m_time in
  if c <> 0 then c else compare a.m_seq b.m_seq

(* Random workload interleaving schedule, cancel, reschedule and
   run_until, mirrored against the model. Times span all wheel levels:
   sub-microsecond, seconds, and hours. *)
let prop_wheel_matches_reference_heap =
  QCheck.Test.make ~name:"timer: wheel dispatches like a (time, seq) heap"
    ~count:80
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let sim = Sim.create () in
      let fired = ref [] in
      (* both live and already-fired handles: cancelling a stale handle
         must be a no-op, so the workload tries it *)
      let pending = ref [] in
      let stale = ref [] in
      let model = ref [] in
      let model_seq = ref 0 in
      let take_seq () =
        let s = !model_seq in
        incr model_seq;
        s
      in
      let rand_delay () =
        match Rng.int rng 4 with
        | 0 -> Rng.uniform rng 1e-5
        | 1 -> Rng.uniform rng 1.
        | 2 -> Rng.uniform rng 60.
        | _ -> Rng.uniform rng 7200.
      in
      let next_id = ref 0 in
      let schedule () =
        let id = !next_id in
        incr next_id;
        let time = Sim.now sim +. rand_delay () in
        let h =
          Sim.schedule_at ~src:"test.model" sim time (fun () ->
              fired := id :: !fired)
        in
        let ev = { id; m_time = time; m_seq = take_seq () } in
        pending := (h, ev) :: !pending;
        model := ev :: !model
      in
      let pick l = List.nth l (Rng.int rng (List.length l)) in
      let cancel () =
        match !pending with
        | [] -> ()
        | l ->
          let h, ev = pick l in
          Sim.Timer.cancel sim h;
          pending := List.filter (fun (h', _) -> h' != h) !pending;
          model := List.filter (fun e -> e != ev) !model
      in
      let cancel_stale () =
        match !stale with [] -> () | l -> Sim.Timer.cancel sim (pick l)
      in
      let reschedule () =
        match !pending with
        | [] -> ()
        | l ->
          let h, ev = pick l in
          let time = Sim.now sim +. rand_delay () in
          Sim.Timer.reschedule sim h time;
          ev.m_time <- time;
          ev.m_seq <- take_seq ()
      in
      let run_step () =
        let horizon = Sim.now sim +. rand_delay () in
        Sim.run_until sim horizon;
        (* everything due has fired: move it out of the model in
           specification order and out of the live handle set *)
        let due, rest =
          List.partition (fun e -> e.m_time <= horizon) !model
        in
        let due = List.sort model_compare due in
        model := rest;
        let due_ids = List.map (fun e -> e.id) due in
        pending :=
          List.filter
            (fun (h, e) ->
              if List.memq e due then begin
                stale := h :: !stale;
                false
              end
              else true)
            !pending;
        due_ids
      in
      let expected = ref [] in
      for _ = 1 to 8 do
        for _ = 1 to 25 do
          match Rng.int rng 10 with
          | 0 | 1 -> cancel ()
          | 2 -> cancel_stale ()
          | 3 | 4 -> reschedule ()
          | _ -> schedule ()
        done;
        expected := !expected @ run_step ()
      done;
      Sim.run sim;
      expected := !expected @ List.map (fun e -> e.id) (List.sort model_compare !model);
      List.rev !fired = !expected)

(* --- cancel ------------------------------------------------------------ *)

let test_cancel_before_fire () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at ~src:"test" sim 1. (fun () -> fired := true) in
  Alcotest.(check bool) "active before" true (Sim.Timer.active sim h);
  Sim.Timer.cancel sim h;
  Alcotest.(check bool) "inactive after cancel" false (Sim.Timer.active sim h);
  Sim.run sim;
  Alcotest.(check bool) "never fired" false !fired;
  Alcotest.(check int) "nothing dispatched" 0 (Sim.events_processed sim)

let test_cancel_after_fire_noop () =
  let sim = Sim.create () in
  let h = Sim.schedule_at ~src:"test" sim 1. (fun () -> ()) in
  (* a later event whose cell may reuse the cancelled slot *)
  let fired = ref false in
  Sim.run_until sim 1.5;
  Alcotest.(check bool) "stale after fire" false (Sim.Timer.active sim h);
  Sim.Timer.cancel sim h;
  Sim.Timer.cancel sim h;
  ignore
    (Sim.schedule_at ~src:"test" sim 2. (fun () -> fired := true)
      : Sim.Timer.t);
  Sim.Timer.cancel sim h;
  Sim.run sim;
  Alcotest.(check bool) "unrelated event survives stale cancels" true !fired

let test_timer_none_inert () =
  let sim = Sim.create () in
  Alcotest.(check bool) "none is inactive" false
    (Sim.Timer.active sim Sim.Timer.none);
  Sim.Timer.cancel sim Sim.Timer.none

(* --- reschedule -------------------------------------------------------- *)

let test_reschedule_moves_deadline () =
  let sim = Sim.create () in
  let at = ref nan in
  let h = Sim.schedule_at ~src:"test" sim 1. (fun () -> at := Sim.now sim) in
  Sim.Timer.reschedule sim h 3.;
  Sim.run sim;
  Alcotest.(check (float 0.)) "fires at the new time" 3. !at;
  Alcotest.(check int) "one dispatch" 1 (Sim.events_processed sim)

let test_reschedule_backward_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at ~src:"test" sim 5. (fun () -> ()) : Sim.Timer.t);
  Sim.run_until sim 2.;
  let h = Sim.schedule_at ~src:"test" sim 4. (fun () -> ()) in
  Alcotest.check_raises "backward reschedule"
    (Invalid_argument "Sim.Timer.reschedule: time in the past") (fun () ->
      Sim.Timer.reschedule sim h 1.);
  Alcotest.check_raises "non-finite reschedule"
    (Invalid_argument "Sim.Timer.reschedule: non-finite time") (fun () ->
      Sim.Timer.reschedule sim h nan)

let test_reschedule_stale_rejected () =
  let sim = Sim.create () in
  let h = Sim.schedule_at ~src:"test" sim 1. (fun () -> ()) in
  Sim.run sim;
  Alcotest.check_raises "stale handle"
    (Invalid_argument "Sim.Timer.reschedule: timer not active") (fun () ->
      Sim.Timer.reschedule sim h 2.)

(* --- non-finite times -------------------------------------------------- *)

let test_non_finite_rejected () =
  let sim = Sim.create () in
  List.iter
    (fun bad ->
      Alcotest.check_raises "non-finite schedule"
        (Invalid_argument "Sim.schedule_at: non-finite time") (fun () ->
          ignore
            (Sim.schedule_at ~src:"test" sim bad (fun () -> ())
              : Sim.Timer.t)))
    [ nan; infinity; neg_infinity ]

(* --- every ------------------------------------------------------------- *)

let test_every_fires_periodically () =
  let sim = Sim.create () in
  let times = ref [] in
  let t =
    Sim.every ~src:"test.every" sim 0.5 (fun () ->
        times := Sim.now sim :: !times)
  in
  Sim.run_until sim 2.25;
  Sim.Timer.cancel sim t;
  Sim.run sim;
  Alcotest.(check (list (float 1e-9)))
    "first fire at now + period, then every period" [ 0.5; 1.; 1.5; 2. ]
    (List.rev !times)

let test_every_explicit_start () =
  let sim = Sim.create () in
  let times = ref [] in
  let t =
    Sim.every ~src:"test.every" ~start:0. sim 1. (fun () ->
        times := Sim.now sim :: !times)
  in
  Sim.run_until sim 2.5;
  Sim.Timer.cancel sim t;
  Alcotest.(check (list (float 1e-9))) "starts where told" [ 0.; 1.; 2. ]
    (List.rev !times)

let test_every_self_cancel () =
  let sim = Sim.create () in
  let n = ref 0 in
  let t = ref Sim.Timer.none in
  t :=
    Sim.every ~src:"test.every" sim 1. (fun () ->
        incr n;
        if !n = 3 then Sim.Timer.cancel sim !t);
  Sim.run sim;
  Alcotest.(check int) "stops itself after three ticks" 3 !n;
  Alcotest.(check bool) "handle is dead" false (Sim.Timer.active sim !t)

let test_every_not_reschedulable () =
  let sim = Sim.create () in
  let t = Sim.every ~src:"test.every" sim 1. (fun () -> ()) in
  Alcotest.check_raises "periodic reschedule"
    (Invalid_argument "Sim.Timer.reschedule: timer is periodic") (fun () ->
      Sim.Timer.reschedule sim t 5.);
  Sim.Timer.cancel sim t

let test_every_rejects_bad_period () =
  let sim = Sim.create () in
  List.iter
    (fun bad ->
      Alcotest.check_raises "bad period"
        (Invalid_argument "Sim.every: period must be finite and positive")
        (fun () ->
          ignore (Sim.every ~src:"test" sim bad (fun () -> ()) : Sim.Timer.t)))
    [ 0.; -1.; nan; infinity ]

(* --- overflow spill ---------------------------------------------------- *)

(* The wheel spans 2^48 ns (~3.26 days); events beyond it live on the
   sorted spill list and must still interleave correctly with wheel
   events and with each other. *)
let test_overflow_spill_ordering () =
  let sim = Sim.create () in
  let day = 86_400. in
  let order = ref [] in
  let ev tag time =
    ignore
      (Sim.schedule_at ~src:"test.spill" sim time (fun () ->
           order := tag :: !order)
        : Sim.Timer.t)
  in
  ev "near" 1.;
  ev "spill_b" (5. *. day);
  ev "spill_a" (4. *. day);
  ev "wheel" (2. *. day);
  Sim.run sim;
  Alcotest.(check (list string))
    "spill interleaves in time order"
    [ "near"; "wheel"; "spill_a"; "spill_b" ]
    (List.rev !order);
  Alcotest.(check (float 0.)) "clock reached the far event" (5. *. day)
    (Sim.now sim)

let test_overflow_spill_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h =
    Sim.schedule_at ~src:"test.spill" sim 4e5 (fun () -> fired := true)
  in
  ignore (Sim.schedule_at ~src:"test" sim 4e5 (fun () -> ()) : Sim.Timer.t);
  Sim.Timer.cancel sim h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled spill event never fires" false !fired

(* --- allocation contract ----------------------------------------------- *)

(* The performance half of the redesign: once pools are warm, the
   steady-state enqueue -> serve -> deliver -> ACK -> deliver cycle
   runs without touching the minor heap. Timer cells come from the
   wheel's free list, packets from the packet pool, and the per-packet
   closures are gone (persistent [on_served], static [Packet.forward]).
   Only meaningful under the native-code compiler: bytecode boxes
   everything. *)
(* The zero-alloc guarantee depends on [Sim.schedule_*] inlining into
   callers so computed deadlines never box at a call boundary. Dev
   builds pass [-opaque], which discards cross-module inlining info, so
   they box once per schedule; release builds do not. Probe which kind
   of build this is by scheduling with a computed (non-constant) delay:
   an inlining build stages it unboxed and allocates nothing. *)
let build_inlines_schedule_path () =
  let sim = Sim.create () in
  let fn () = () in
  let sched i =
    Sim.Timer.cancel sim
      (Sim.schedule_after ~src:"canary" sim (float_of_int i *. 1e-9) fn)
  in
  for i = 1 to 100 do sched i done;
  let w0 = Gc.minor_words () in
  for i = 1 to 1000 do sched i done;
  let w1 = Gc.minor_words () in
  w1 -. w0 < 100.

let test_steady_state_zero_alloc () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:7 in
  let q =
    Queue.create ~sim ~rng ~rate_bps:12e6 ~buffer_pkts:64
      ~discipline:Queue.Droptail ()
  in
  let fwd_pipe = Pipe.create ~sim ~delay:0.02 in
  let rev_pipe = Pipe.create ~sim ~delay:0.02 in
  let acked = ref 0 in
  let ack_sink (p : Packet.t) =
    incr acked;
    Packet.free p
  in
  let rev_route = [| Pipe.hop rev_pipe; ack_sink |] in
  let responder (p : Packet.t) =
    let seq = p.Packet.seq in
    let echo = p.Packet.times.Packet.sent_at in
    Packet.free p;
    Packet.forward
      (Packet.ack ~flow:0 ~subflow:0 ~ackno:(seq + 1) ~echo ~sack:None
         ~route:rev_route ~sent_at:(Sim.now sim))
  in
  let fwd_route = [| Queue.hop q; Pipe.hop fwd_pipe; responder |] in
  let sent = ref 0 in
  let tick () =
    Packet.forward
      (Packet.data ~flow:0 ~subflow:0 ~seq:!sent ~sent_at:(Sim.now sim)
         ~route:fwd_route);
    incr sent
  in
  let src = Sim.every ~src:"test.source" ~start:0. sim 0.002 tick in
  (* warm-up: grow pools, the queue ring and the wheel's cell arrays *)
  Sim.run_until sim 1.;
  let before = !acked in
  let w0 = Gc.minor_words () in
  Sim.run_until sim 11.;
  let w1 = Gc.minor_words () in
  Sim.Timer.cancel sim src;
  Sim.run sim;
  let packets = !acked - before in
  Alcotest.(check bool) "traffic flowed" true (packets > 4000);
  if Sys.backend_type = Sys.Native then
    if build_inlines_schedule_path () then
      Alcotest.(check (float 0.))
        (Printf.sprintf "minor words for %d packets" packets)
        0. (w1 -. w0)
    else begin
      (* non-inlining (dev/-opaque) build: each boxed float is 2 words;
         a loose per-packet bound still catches real regressions such
         as a record or closure allocated per event *)
      let per_pkt = (w1 -. w0) /. float_of_int packets in
      Alcotest.(check bool)
        (Printf.sprintf "minor words per packet (%.1f) < 64" per_pkt)
        true (per_pkt < 64.)
    end

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    q prop_wheel_matches_reference_heap;
    Alcotest.test_case "cancel before fire" `Quick test_cancel_before_fire;
    Alcotest.test_case "cancel after fire is a no-op" `Quick
      test_cancel_after_fire_noop;
    Alcotest.test_case "Timer.none is inert" `Quick test_timer_none_inert;
    Alcotest.test_case "reschedule moves the deadline" `Quick
      test_reschedule_moves_deadline;
    Alcotest.test_case "reschedule backward rejected" `Quick
      test_reschedule_backward_rejected;
    Alcotest.test_case "reschedule of stale handle rejected" `Quick
      test_reschedule_stale_rejected;
    Alcotest.test_case "non-finite times rejected" `Quick
      test_non_finite_rejected;
    Alcotest.test_case "every: fires each period" `Quick
      test_every_fires_periodically;
    Alcotest.test_case "every: explicit start" `Quick test_every_explicit_start;
    Alcotest.test_case "every: self-cancel" `Quick test_every_self_cancel;
    Alcotest.test_case "every: not reschedulable" `Quick
      test_every_not_reschedulable;
    Alcotest.test_case "every: rejects bad periods" `Quick
      test_every_rejects_bad_period;
    Alcotest.test_case "overflow spill ordering" `Quick
      test_overflow_spill_ordering;
    Alcotest.test_case "overflow spill cancel" `Quick test_overflow_spill_cancel;
    Alcotest.test_case "steady-state path allocates nothing" `Quick
      test_steady_state_zero_alloc;
  ]
