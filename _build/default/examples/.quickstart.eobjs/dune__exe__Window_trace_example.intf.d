examples/window_trace_example.mli:
