lib/cc/scalable.ml: Array Cc_types
