(** Testbed Scenario A (paper Fig. 2): N1 MPTCP streaming clients with a
    private path and an optional subflow through a shared AP used by N2
    regular-TCP clients.

    Router R1 emulates the server-side bottleneck of capacity [n1·c1];
    router R2 the shared AP of capacity [n2·c2]. A type-1 user's private
    path crosses R1; its shared path crosses R1 then R2. Type-2 users
    cross R2 only. *)

type config = {
  n1 : int;
  n2 : int;
  c1_mbps : float;  (** per-user capacity at the server bottleneck *)
  c2_mbps : float;  (** per-user capacity at the shared AP *)
  algo : string;  (** congestion control of type-1 users *)
  duration : float;
  warmup : float;
  seed : int;
}

val default : config
(** N1 = N2 = 10, C1 = C2 = 1 Mb/s, OLIA, 120 s runs with 30 s warmup —
    the paper's operating point. *)

type result = {
  norm_type1 : float;  (** mean type-1 goodput normalized by c1 *)
  norm_type2 : float;  (** mean type-2 goodput normalized by c2 *)
  p1 : float;  (** measured loss probability at the server bottleneck *)
  p2 : float;  (** measured loss probability at the shared AP *)
  obs : Repro_obs.Meter.report;  (** run counters and timers *)
}

val run : config -> result
(** One measurement (one seed). *)

val replicate : config -> seeds:int list -> result list
(** The same configuration under several seeds (the paper reports 5
    repetitions with 95% confidence intervals). *)
