lib/netsim/queue.ml: Packet Rng Sim Stdlib
