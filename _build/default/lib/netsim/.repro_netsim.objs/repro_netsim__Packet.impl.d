lib/netsim/packet.ml: Array
