(* lint: allow-file R1 -- wall-clock profiling of the event-loop harness; simulation results never read these values *)

(* Event-loop profiler. Same guard discipline as Trace: [enabled] is a
   single ref read, and [Sim.schedule_at] only wraps a callback in
   [dispatch] when profiling was armed at scheduling time, so the
   profiling-off path costs one ref read per schedule and nothing per
   dispatch. Attribution is by the [~src] label the scheduling site
   passes (e.g. "queue.serve", "tcp.rto"); unlabelled sites pool under
   "other".

   Accumulators are per-domain: each domain gets its own table from
   domain-local storage, so dispatch never takes a lock. Workers in a
   sharded run [bind ~shard] their domain so the per-shard breakdown
   can name shards; unbound domains pool under shard [-1]. The global
   registry (for the offline rollup) is only touched when a domain
   first creates its table. *)

(* lint: allow R2 R10 -- process-global profiler switch, armed once by the CLI or test setup before the profiled run starts *)
let armed = ref false

type cell = { mutable count : int; mutable wall_s : float }

type dom_table = {
  mutable shard : int;
  reg : int; (* registration order, the deterministic fold order *)
  tbl : (string, cell) Hashtbl.t;
}

let lock = Mutex.create ()

(* lint: allow R2 R10 -- registry of per-domain tables in registration order, appended under [lock] at table creation, read offline by report *)
let registry : dom_table list ref = ref []

(* lint: allow R2 R10 -- registration counter for [registry], bumped under [lock] *)
let reg_count = ref 0

let fresh_table shard =
  let t =
    Mutex.protect lock (fun () ->
        let t = { shard; reg = !reg_count; tbl = Hashtbl.create 16 } in
        incr reg_count;
        registry := t :: !registry;
        t)
  in
  t

let key : dom_table option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_table () =
  let slot = Domain.DLS.get key in
  match !slot with
  | Some t -> t
  | None ->
    let t = fresh_table (-1) in
    slot := Some t;
    t

let bind ~shard =
  let slot = Domain.DLS.get key in
  match !slot with
  | Some t -> t.shard <- shard
  | None -> slot := Some (fresh_table shard)

let enabled () = !armed
let set_enabled b = armed := b

let reset () =
  Mutex.protect lock (fun () ->
      List.iter (fun t -> Hashtbl.reset t.tbl) !registry)

let dispatch ~src fn =
  let t0 = Unix.gettimeofday () in
  fn ();
  let dt = Unix.gettimeofday () -. t0 in
  let tbl = (my_table ()).tbl in
  let cell =
    match Hashtbl.find_opt tbl src with
    | Some c -> c
    | None ->
      let c = { count = 0; wall_s = 0. } in
      Hashtbl.add tbl src c;
      c
  in
  cell.count <- cell.count + 1;
  cell.wall_s <- cell.wall_s +. dt

type entry = { src : string; count : int; wall_s : float }

(* Hottest first; ties (e.g. all-zero wall on a coarse clock) break
   alphabetically so the rendering is stable. *)
let sort_entries entries =
  List.sort
    (fun a b ->
      match compare b.wall_s a.wall_s with
      | 0 -> String.compare a.src b.src
      | c -> c)
    entries

(* Snapshot the registry in registration order so the float summation
   order below is deterministic for a given run shape. *)
let tables () =
  Mutex.protect lock (fun () ->
      List.sort (fun a b -> Int.compare a.reg b.reg) !registry)

let fold_tables ts =
  let acc : (string, cell) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun src (c : cell) ->
          match Hashtbl.find_opt acc src with
          | Some a ->
            a.count <- a.count + c.count;
            a.wall_s <- a.wall_s +. c.wall_s
          | None -> Hashtbl.add acc src { count = c.count; wall_s = c.wall_s })
        t.tbl)
    ts;
  Hashtbl.fold
    (fun src (c : cell) acc -> { src; count = c.count; wall_s = c.wall_s } :: acc)
    acc []

let report () = sort_entries (fold_tables (tables ()))

(* Per-shard breakdown: tables sharing a shard id merge (a domain that
   ran several windows, or rebound); shards ascend, unbound domains
   ([-1]) first. *)
let report_by_shard () =
  let ts = tables () in
  let shards = List.sort_uniq Int.compare (List.map (fun t -> t.shard) ts) in
  List.map
    (fun s ->
      (s, sort_entries (fold_tables (List.filter (fun t -> t.shard = s) ts))))
    shards

let to_table entries =
  let total_wall = List.fold_left (fun acc e -> acc +. e.wall_s) 0. entries in
  let table =
    Repro_stats.Table.create ~title:"event-loop profile"
      ~columns:[ "source"; "dispatches"; "wall_ms"; "wall_%" ]
  in
  List.iter
    (fun e ->
      Repro_stats.Table.add_row table
        [
          e.src;
          string_of_int e.count;
          Printf.sprintf "%.3f" (e.wall_s *. 1e3);
          (if total_wall > 0. then
             Printf.sprintf "%.1f" (100. *. e.wall_s /. total_wall)
           else "-");
        ])
    entries;
  table

let to_shard_table by_shard =
  let table =
    Repro_stats.Table.create ~title:"event-loop profile (per shard)"
      ~columns:[ "shard"; "source"; "dispatches"; "wall_ms" ]
  in
  List.iter
    (fun (shard, entries) ->
      let shard_name = if shard < 0 then "-" else string_of_int shard in
      List.iter
        (fun e ->
          Repro_stats.Table.add_row table
            [
              shard_name;
              e.src;
              string_of_int e.count;
              Printf.sprintf "%.3f" (e.wall_s *. 1e3);
            ])
        entries)
    by_shard;
  table

(* OLIA_PROFILE=1 (or true/yes/on) arms the profiler at startup and
   dumps the per-source table to stderr at exit, so any binary can be
   profiled without CLI plumbing. *)
let () =
  match Sys.getenv_opt "OLIA_PROFILE" with
  | None | Some "" | Some "0" -> ()
  | Some _ ->
    armed := true;
    at_exit (fun () ->
        match report () with
        | [] -> ()
        | entries ->
          prerr_string (Repro_stats.Table.to_string (to_table entries)))
