(* Structured event tracing for the simulator.

   The design point is zero cost when disarmed: every instrumentation
   site in lib/netsim guards its event construction with
   [if Trace.enabled () then ...], and [enabled] is a single ref read,
   so the tracing-off hot path neither allocates nor branches beyond
   that one test. Events are plain records of scalars — no closures,
   no lazy thunks — and serialize through [Repro_stats.Json] to JSONL
   (one compact object per line), which `olia_sim run --trace` and the
   OLIA_TRACE environment variable arm. *)

module Json = Repro_stats.Json

type tcp_state = Slow_start | Congestion_avoidance | Fast_recovery
type drop_cause = Overflow | Red_early | Random_loss | Link_down

type event =
  | Pkt_enqueue of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      backlog : int;
    }
  | Pkt_drop of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      cause : drop_cause;
    }
  | Pkt_forward of {
      time : float;
      queue : string;
      flow : int;
      subflow : int;
      seq : int;
      kind : string;
      bytes : int;
      qdelay : float;
    }
  | Tcp_state of {
      time : float;
      flow : int;
      subflow : int;
      from_state : tcp_state;
      to_state : tcp_state;
    }
  | Cwnd_update of {
      time : float;
      flow : int;
      subflow : int;
      cwnd : float;
      ssthresh : float;
    }
  | Rto_fired of { time : float; flow : int; subflow : int; rto : float }
  | Rtt_sample of {
      time : float;
      flow : int;
      subflow : int;
      rtt : float;
      srtt : float;
    }
  | Subflow_add of { time : float; flow : int; subflow : int }
  | Subflow_remove of { time : float; flow : int; subflow : int }

let state_name = function
  | Slow_start -> "slow_start"
  | Congestion_avoidance -> "congestion_avoidance"
  | Fast_recovery -> "fast_recovery"

let state_of_name = function
  | "slow_start" -> Some Slow_start
  | "congestion_avoidance" -> Some Congestion_avoidance
  | "fast_recovery" -> Some Fast_recovery
  | _ -> None

let cause_name = function
  | Overflow -> "overflow"
  | Red_early -> "red_early"
  | Random_loss -> "random_loss"
  | Link_down -> "link_down"

let cause_of_name = function
  | "overflow" -> Some Overflow
  | "red_early" -> Some Red_early
  | "random_loss" -> Some Random_loss
  | "link_down" -> Some Link_down
  | _ -> None

(* Every object leads with an "ev" discriminator so a stream consumer
   can dispatch without probing field sets. *)
let to_json = function
  | Pkt_enqueue { time; queue; flow; subflow; seq; kind; backlog } ->
    Json.Obj
      [
        ("ev", Json.String "pkt_enqueue"); ("t", Json.Float time);
        ("queue", Json.String queue); ("flow", Json.Int flow);
        ("subflow", Json.Int subflow); ("seq", Json.Int seq);
        ("kind", Json.String kind); ("backlog", Json.Int backlog);
      ]
  | Pkt_drop { time; queue; flow; subflow; seq; kind; cause } ->
    Json.Obj
      [
        ("ev", Json.String "pkt_drop"); ("t", Json.Float time);
        ("queue", Json.String queue); ("flow", Json.Int flow);
        ("subflow", Json.Int subflow); ("seq", Json.Int seq);
        ("kind", Json.String kind);
        ("cause", Json.String (cause_name cause));
      ]
  | Pkt_forward { time; queue; flow; subflow; seq; kind; bytes; qdelay } ->
    Json.Obj
      [
        ("ev", Json.String "pkt_forward"); ("t", Json.Float time);
        ("queue", Json.String queue); ("flow", Json.Int flow);
        ("subflow", Json.Int subflow); ("seq", Json.Int seq);
        ("kind", Json.String kind); ("bytes", Json.Int bytes);
        ("qdelay", Json.Float qdelay);
      ]
  | Tcp_state { time; flow; subflow; from_state; to_state } ->
    Json.Obj
      [
        ("ev", Json.String "tcp_state"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("from", Json.String (state_name from_state));
        ("to", Json.String (state_name to_state));
      ]
  | Cwnd_update { time; flow; subflow; cwnd; ssthresh } ->
    Json.Obj
      [
        ("ev", Json.String "cwnd_update"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("cwnd", Json.Float cwnd); ("ssthresh", Json.Float ssthresh);
      ]
  | Rto_fired { time; flow; subflow; rto } ->
    Json.Obj
      [
        ("ev", Json.String "rto_fired"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("rto", Json.Float rto);
      ]
  | Rtt_sample { time; flow; subflow; rtt; srtt } ->
    Json.Obj
      [
        ("ev", Json.String "rtt_sample"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
        ("rtt", Json.Float rtt); ("srtt", Json.Float srtt);
      ]
  | Subflow_add { time; flow; subflow } ->
    Json.Obj
      [
        ("ev", Json.String "subflow_add"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
      ]
  | Subflow_remove { time; flow; subflow } ->
    Json.Obj
      [
        ("ev", Json.String "subflow_remove"); ("t", Json.Float time);
        ("flow", Json.Int flow); ("subflow", Json.Int subflow);
      ]

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let as_float name = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | Json.Null -> Ok nan (* non-finite floats serialize as null *)
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S is not an integer" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let floatf fields name =
  let* v = field fields name in
  as_float name v

let intf fields name =
  let* v = field fields name in
  as_int name v

let stringf fields name =
  let* v = field fields name in
  as_string name v

let statef fields name =
  let* s = stringf fields name in
  match state_of_name s with
  | Some st -> Ok st
  | None -> Error (Printf.sprintf "unknown tcp state %S" s)

let of_json json =
  match json with
  | Json.Obj fields -> (
    let* ev = stringf fields "ev" in
    match ev with
    | "pkt_enqueue" ->
      let* time = floatf fields "t" in
      let* queue = stringf fields "queue" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* seq = intf fields "seq" in
      let* kind = stringf fields "kind" in
      let* backlog = intf fields "backlog" in
      Ok (Pkt_enqueue { time; queue; flow; subflow; seq; kind; backlog })
    | "pkt_drop" ->
      let* time = floatf fields "t" in
      let* queue = stringf fields "queue" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* seq = intf fields "seq" in
      let* kind = stringf fields "kind" in
      let* cause_s = stringf fields "cause" in
      let* cause =
        match cause_of_name cause_s with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown drop cause %S" cause_s)
      in
      Ok (Pkt_drop { time; queue; flow; subflow; seq; kind; cause })
    | "pkt_forward" ->
      let* time = floatf fields "t" in
      let* queue = stringf fields "queue" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* seq = intf fields "seq" in
      let* kind = stringf fields "kind" in
      let* bytes = intf fields "bytes" in
      let* qdelay = floatf fields "qdelay" in
      Ok (Pkt_forward { time; queue; flow; subflow; seq; kind; bytes; qdelay })
    | "tcp_state" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* from_state = statef fields "from" in
      let* to_state = statef fields "to" in
      Ok (Tcp_state { time; flow; subflow; from_state; to_state })
    | "cwnd_update" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* cwnd = floatf fields "cwnd" in
      let* ssthresh = floatf fields "ssthresh" in
      Ok (Cwnd_update { time; flow; subflow; cwnd; ssthresh })
    | "rto_fired" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* rto = floatf fields "rto" in
      Ok (Rto_fired { time; flow; subflow; rto })
    | "rtt_sample" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      let* rtt = floatf fields "rtt" in
      let* srtt = floatf fields "srtt" in
      Ok (Rtt_sample { time; flow; subflow; rtt; srtt })
    | "subflow_add" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      Ok (Subflow_add { time; flow; subflow })
    | "subflow_remove" ->
      let* time = floatf fields "t" in
      let* flow = intf fields "flow" in
      let* subflow = intf fields "subflow" in
      Ok (Subflow_remove { time; flow; subflow })
    | other -> Error (Printf.sprintf "unknown event %S" other))
  | _ -> Error "trace event is not a JSON object"

(* --- sink ----------------------------------------------------------- *)

(* The sink is process-global by design: a trace interleaves events
   from every queue and connection of a run, and the CLI arms it around
   a single scenario execution. Parallel sweeps run untraced (the CLI
   never arms tracing there), and [emit] serializes writers with a
   mutex in case a traced program still spawns domains. *)

(* lint: allow R2 R10 -- process-global trace sink, armed once by the CLI or test setup before the (single-domain) traced run starts; Exp.Sweep refuses to run while armed *)
let sink : (event -> unit) option ref = ref None

(* lint: allow R2 -- paired with [sink]: the channel behind the JSONL writer, managed only by open_jsonl/close *)
let chan : out_channel option ref = ref None

let lock = Mutex.create ()
let enabled () = Option.is_some !sink

let emit ev =
  match !sink with
  | None -> ()
  | Some f -> Mutex.protect lock (fun () -> f ev)

let close () =
  Mutex.protect lock (fun () ->
      (match !chan with
      | Some oc ->
        flush oc;
        if oc != stderr then close_out oc
      | None -> ());
      chan := None;
      sink := None)

let set_sink f = sink := f

let jsonl_writer oc ev =
  output_string oc (Json.to_string (to_json ev));
  output_char oc '\n'

let open_jsonl ~path =
  close ();
  let oc = open_out path in
  chan := Some oc;
  sink := Some (jsonl_writer oc)

let with_jsonl ~path f =
  open_jsonl ~path;
  Fun.protect ~finally:close f

(* OLIA_TRACE=1 (or true/yes/on) streams JSONL to stderr; any other
   non-empty value is taken as an output path. *)
let () =
  match Sys.getenv_opt "OLIA_TRACE" with
  | None | Some "" | Some "0" -> ()
  | Some ("1" | "true" | "yes" | "on") ->
    chan := Some stderr;
    sink := Some (jsonl_writer stderr);
    at_exit close
  | Some path ->
    open_jsonl ~path;
    at_exit close
